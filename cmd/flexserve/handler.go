package main

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"strconv"
	"time"

	"flexpath"
)

// handler serves the JSON API over a collection.
type handler struct {
	coll *flexpath.Collection
	mux  *http.ServeMux
	// timeout bounds per-request search evaluation; 0 means no limit.
	timeout time.Duration
}

func newHandler(coll *flexpath.Collection) http.Handler {
	return newHandlerTimeout(coll, 0)
}

func newHandlerTimeout(coll *flexpath.Collection, timeout time.Duration) http.Handler {
	h := &handler{coll: coll, mux: http.NewServeMux(), timeout: timeout}
	h.mux.HandleFunc("/search", h.search)
	h.mux.HandleFunc("/relaxations", h.relaxations)
	h.mux.HandleFunc("/plan", h.plan)
	h.mux.HandleFunc("/stats", h.stats)
	h.mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusOK)
		w.Write([]byte("ok\n")) //nolint:errcheck
	})
	return h.mux
}

type errorBody struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // nothing to do about write errors here
}

func badRequest(w http.ResponseWriter, msg string) {
	writeJSON(w, http.StatusBadRequest, errorBody{Error: msg})
}

// parseCommon extracts query, K, algorithm and scheme parameters.
func parseCommon(r *http.Request) (*flexpath.Query, flexpath.SearchOptions, error) {
	src := r.URL.Query().Get("q")
	if src == "" {
		return nil, flexpath.SearchOptions{}, errMissingQuery
	}
	q, err := flexpath.ParseQuery(src)
	if err != nil {
		return nil, flexpath.SearchOptions{}, err
	}
	opts := flexpath.SearchOptions{K: 10}
	if ks := r.URL.Query().Get("k"); ks != "" {
		// Clamp K: an unbounded k lets one request materialize an
		// arbitrarily large answer set.
		k, err := strconv.Atoi(ks)
		if err != nil || k < 1 || k > maxK {
			return nil, opts, errBadK
		}
		opts.K = k
	}
	if a := r.URL.Query().Get("algo"); a != "" {
		algo, err := flexpath.ParseAlgorithm(a)
		if err != nil {
			return nil, opts, err
		}
		opts.Algorithm = algo
	}
	if s := r.URL.Query().Get("scheme"); s != "" {
		scheme, err := flexpath.ParseScheme(s)
		if err != nil {
			return nil, opts, err
		}
		opts.Scheme = scheme
	}
	return q, opts, nil
}

// maxK bounds the k parameter of one request.
const maxK = 1000

var (
	errMissingQuery = jsonError("missing q parameter")
	errBadK         = jsonError("k must be an integer between 1 and 1000")
)

type jsonError string

func (e jsonError) Error() string { return string(e) }

type searchAnswer struct {
	Rank        int      `json:"rank"`
	Doc         string   `json:"doc"`
	Path        string   `json:"path"`
	ID          string   `json:"id,omitempty"`
	Structural  float64  `json:"structural"`
	Keyword     float64  `json:"keyword"`
	Relaxations int      `json:"relaxations"`
	Relaxed     []string `json:"relaxed,omitempty"`
	Snippet     string   `json:"snippet,omitempty"`
}

type searchResponse struct {
	Query     string         `json:"query"`
	Answers   []searchAnswer `json:"answers"`
	ElapsedMS float64        `json:"elapsed_ms"`
}

func (h *handler) search(w http.ResponseWriter, r *http.Request) {
	q, opts, err := parseCommon(r)
	if err != nil {
		badRequest(w, err.Error())
		return
	}
	withWhy := r.URL.Query().Get("why") == "1"
	snippet := 0
	if ss := r.URL.Query().Get("snippet"); ss != "" {
		if n, err := strconv.Atoi(ss); err == nil && n > 0 && n <= 4096 {
			snippet = n
		}
	}
	// The request context carries client disconnects; the configured
	// timeout turns runaway evaluations into 504s instead of holding a
	// worker goroutine for an unbounded join.
	ctx := r.Context()
	if h.timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, h.timeout)
		defer cancel()
	}
	start := time.Now()
	answers, err := h.coll.SearchContext(ctx, q, opts)
	if err != nil {
		status := http.StatusInternalServerError
		if errors.Is(err, context.DeadlineExceeded) {
			status = http.StatusGatewayTimeout
		}
		writeJSON(w, status, errorBody{Error: err.Error()})
		return
	}
	resp := searchResponse{
		Query:     q.String(),
		ElapsedMS: float64(time.Since(start)) / 1e6,
		Answers:   make([]searchAnswer, 0, len(answers)),
	}
	for i, a := range answers {
		sa := searchAnswer{
			Rank: i + 1, Doc: a.DocName, Path: a.Path, ID: a.ID,
			Structural: a.Structural, Keyword: a.Keyword, Relaxations: a.Relaxations,
		}
		if withWhy {
			sa.Relaxed = a.Relaxed
		}
		if snippet > 0 {
			sa.Snippet = a.Snippet(snippet)
		}
		resp.Answers = append(resp.Answers, sa)
	}
	writeJSON(w, http.StatusOK, resp)
}

type relaxationsResponse struct {
	Query string `json:"query"`
	Docs  []struct {
		Doc   string                    `json:"doc"`
		Steps []flexpath.RelaxationStep `json:"steps"`
	} `json:"docs"`
}

func (h *handler) relaxations(w http.ResponseWriter, r *http.Request) {
	q, _, err := parseCommon(r)
	if err != nil {
		badRequest(w, err.Error())
		return
	}
	resp := relaxationsResponse{Query: q.String()}
	for _, name := range h.docNames() {
		doc, _ := h.coll.Document(name)
		steps, err := doc.Relaxations(q)
		if err != nil {
			writeJSON(w, http.StatusInternalServerError, errorBody{Error: err.Error()})
			return
		}
		resp.Docs = append(resp.Docs, struct {
			Doc   string                    `json:"doc"`
			Steps []flexpath.RelaxationStep `json:"steps"`
		}{Doc: name, Steps: steps})
	}
	writeJSON(w, http.StatusOK, resp)
}

func (h *handler) plan(w http.ResponseWriter, r *http.Request) {
	q, opts, err := parseCommon(r)
	if err != nil {
		badRequest(w, err.Error())
		return
	}
	type planDoc struct {
		Doc  string `json:"doc"`
		Plan string `json:"plan"`
	}
	var out []planDoc
	for _, name := range h.docNames() {
		doc, _ := h.coll.Document(name)
		p, err := doc.ExplainPlan(q, opts)
		if err != nil {
			writeJSON(w, http.StatusInternalServerError, errorBody{Error: err.Error()})
			return
		}
		out = append(out, planDoc{Doc: name, Plan: p})
	}
	writeJSON(w, http.StatusOK, out)
}

type statsResponse struct {
	Documents int            `json:"documents"`
	Elements  int            `json:"elements"`
	PerDoc    map[string]int `json:"per_doc"`
	// Cache reports the collection-level query-result cache; DocCache
	// sums the per-document caches. Omitted when caching is disabled.
	Cache    *flexpath.CacheStats `json:"cache,omitempty"`
	DocCache *flexpath.CacheStats `json:"doc_cache,omitempty"`
}

func (h *handler) stats(w http.ResponseWriter, _ *http.Request) {
	resp := statsResponse{
		Documents: h.coll.Len(),
		Elements:  h.coll.Nodes(),
		PerDoc:    map[string]int{},
	}
	for _, name := range h.docNames() {
		doc, _ := h.coll.Document(name)
		resp.PerDoc[name] = doc.Nodes()
	}
	if cs, ok := h.coll.CacheStats(); ok {
		resp.Cache = &cs
	}
	if ds, ok := h.coll.DocumentCacheStats(); ok {
		resp.DocCache = &ds
	}
	writeJSON(w, http.StatusOK, resp)
}

func (h *handler) docNames() []string { return h.coll.Names() }
