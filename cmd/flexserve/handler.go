package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/pprof"
	"runtime/debug"
	"sort"
	"strconv"
	"sync/atomic"
	"time"

	"flexpath"
	"flexpath/internal/obs"
)

// serverMetrics are the serving-robustness counters exported as the
// flexpath_server_* metric families: requests admitted and executing,
// requests shed by the admission limit, and handler panics recovered
// into 500s.
type serverMetrics struct {
	inFlight atomic.Int64
	shed     atomic.Uint64
	panics   atomic.Uint64
	// bulk ingest counters (flexpath_server_bulk_*): batches currently
	// executing, batches rejected by the concurrency bound, and individual
	// operations applied / failed across all batches.
	bulkInFlight atomic.Int64
	bulkRejected atomic.Uint64
	bulkApplied  atomic.Uint64
	bulkFailed   atomic.Uint64
}

// handler serves the JSON API over a collection.
type handler struct {
	coll *flexpath.Collection
	mux  *http.ServeMux
	// timeout bounds per-request search evaluation; 0 means no limit.
	timeout time.Duration
	// reg aggregates per-query observability (never nil).
	reg *obs.Registry
	// sem, when non-nil, is the admission semaphore for query endpoints:
	// its capacity is the max-in-flight limit, and a request that cannot
	// acquire a slot immediately is shed with 503 + Retry-After.
	sem chan struct{}
	// dur, when non-nil, is the durable collection the admin mutation
	// endpoints write through: mutations are WAL-logged and fsync'd before
	// the response is sent. coll aliases dur.Collection() in that case.
	dur *flexpath.DurableCollection
	// bulkSem, when non-nil, bounds concurrently executing /admin/bulk
	// batches; excess batches are rejected with 429 before their body is
	// read, so backpressure costs the client no upload bandwidth.
	bulkSem chan struct{}
	srv     serverMetrics
}

// handlerConfig configures optional serving features.
type handlerConfig struct {
	timeout time.Duration
	// slowCap and slowThreshold shape the slow-query log; zero values
	// pick the obs defaults (128 entries, log everything).
	slowCap       int
	slowThreshold time.Duration
	// pprof exposes net/http/pprof under /debug/pprof/.
	pprof bool
	// maxInFlight caps concurrently executing query requests (/search,
	// /relaxations, /plan); excess requests are shed with 503.
	// 0 means unlimited.
	maxInFlight int
	// admin exposes the corpus-mutation endpoints under /admin/.
	admin bool
	// durable, when set, routes admin mutations through the write-ahead
	// log; coll must be durable.Collection().
	durable *flexpath.DurableCollection
	// maxBulk caps concurrently executing /admin/bulk batches; excess is
	// rejected with 429. 0 means unlimited.
	maxBulk int
}

func newHandler(coll *flexpath.Collection) http.Handler {
	return newHandlerTimeout(coll, 0)
}

func newHandlerTimeout(coll *flexpath.Collection, timeout time.Duration) http.Handler {
	h, _ := newHandlerConfig(coll, handlerConfig{timeout: timeout})
	return h
}

// newHandlerConfig builds the full serving handler and returns the
// registry so the caller (main, tests) can inspect it.
func newHandlerConfig(coll *flexpath.Collection, cfg handlerConfig) (http.Handler, *obs.Registry) {
	h := &handler{
		coll:    coll,
		mux:     http.NewServeMux(),
		timeout: cfg.timeout,
		reg:     obs.NewRegistry(cfg.slowCap, cfg.slowThreshold),
		dur:     cfg.durable,
	}
	if cfg.maxInFlight > 0 {
		h.sem = make(chan struct{}, cfg.maxInFlight)
	}
	if cfg.maxBulk > 0 {
		h.bulkSem = make(chan struct{}, cfg.maxBulk)
	}
	h.mux.HandleFunc("/search", h.limited(h.search))
	h.mux.HandleFunc("/relaxations", h.limited(h.relaxations))
	h.mux.HandleFunc("/plan", h.limited(h.plan))
	h.mux.HandleFunc("/stats", h.stats)
	h.mux.HandleFunc("/metrics", h.metrics)
	h.mux.HandleFunc("/slowlog", h.slowlog)
	h.mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusOK)
		w.Write([]byte("ok\n")) //nolint:errcheck
	})
	if cfg.admin {
		h.mux.HandleFunc("/admin/add", h.adminAdd)
		h.mux.HandleFunc("/admin/remove", h.adminRemove)
		h.mux.HandleFunc("/admin/replace", h.adminReplace)
		h.mux.HandleFunc("/admin/bulk", h.adminBulk)
	}
	if cfg.pprof {
		h.mux.HandleFunc("/debug/pprof/", pprof.Index)
		h.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		h.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		h.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		h.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return h, h.reg
}

// ServeHTTP dispatches through the mux under panic recovery: a panicking
// handler produces a 500 and a counter increment instead of killing the
// whole process (http.Server would otherwise only contain the panic to
// the connection goroutine — and a panic should be visible in /metrics,
// not just a log line).
func (h *handler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	defer func() {
		if p := recover(); p != nil {
			h.srv.panics.Add(1)
			log.Printf("flexserve: panic serving %s: %v\n%s", r.URL.Path, p, debug.Stack())
			// Best effort: if the handler already wrote headers this is a
			// no-op and the client sees a truncated response.
			writeJSON(w, http.StatusInternalServerError, errorBody{Error: "internal server error"})
		}
	}()
	h.mux.ServeHTTP(w, r)
}

// limited wraps a query endpoint with admission control: at most
// maxInFlight requests execute concurrently, and excess load is shed
// immediately with 503 + Retry-After rather than queued (queueing under
// overload only grows latency until clients time out anyway). Operational
// endpoints (/metrics, /healthz, /stats, /admin) bypass the limiter so
// the server stays observable and manageable while saturated.
func (h *handler) limited(next http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if h.sem != nil {
			select {
			case h.sem <- struct{}{}:
				defer func() { <-h.sem }()
			default:
				h.srv.shed.Add(1)
				w.Header().Set("Retry-After", "1")
				writeJSON(w, http.StatusServiceUnavailable,
					errorBody{Error: "server overloaded: max in-flight queries reached, retry later"})
				return
			}
		}
		h.srv.inFlight.Add(1)
		defer h.srv.inFlight.Add(-1)
		next(w, r)
	}
}

type errorBody struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // nothing to do about write errors here
}

func badRequest(w http.ResponseWriter, msg string) {
	writeJSON(w, http.StatusBadRequest, errorBody{Error: msg})
}

// requestContext applies the configured per-request evaluation timeout.
func (h *handler) requestContext(r *http.Request) (context.Context, context.CancelFunc) {
	ctx := r.Context()
	if h.timeout > 0 {
		return context.WithTimeout(ctx, h.timeout)
	}
	return ctx, func() {}
}

// searchStatus maps a search error to (HTTP status, span status).
func searchStatus(err error) (int, string) {
	switch {
	case err == nil:
		return http.StatusOK, "ok"
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout, "timeout"
	case errors.Is(err, context.Canceled):
		return http.StatusInternalServerError, "canceled"
	default:
		return http.StatusInternalServerError, "error"
	}
}

// parseCommon extracts query, K, algorithm and scheme parameters.
func parseCommon(r *http.Request) (*flexpath.Query, flexpath.SearchOptions, error) {
	src := r.URL.Query().Get("q")
	if src == "" {
		return nil, flexpath.SearchOptions{}, errMissingQuery
	}
	q, err := flexpath.ParseQuery(src)
	if err != nil {
		return nil, flexpath.SearchOptions{}, err
	}
	opts := flexpath.SearchOptions{K: 10}
	if ks := r.URL.Query().Get("k"); ks != "" {
		// Clamp K: an unbounded k lets one request materialize an
		// arbitrarily large answer set.
		k, err := strconv.Atoi(ks)
		if err != nil || k < 1 || k > maxK {
			return nil, opts, errBadK
		}
		opts.K = k
	}
	if os := r.URL.Query().Get("offset"); os != "" {
		// Offset is clamped too: each member document materializes its
		// top K+Offset answers, so offset bounds per-request work just
		// like k does.
		o, err := strconv.Atoi(os)
		if err != nil || o < 0 || o > maxOffset {
			return nil, opts, errBadOffset
		}
		opts.Offset = o
	}
	if a := r.URL.Query().Get("algo"); a != "" {
		algo, err := flexpath.ParseAlgorithm(a)
		if err != nil {
			return nil, opts, err
		}
		opts.Algorithm = algo
	}
	if s := r.URL.Query().Get("scheme"); s != "" {
		scheme, err := flexpath.ParseScheme(s)
		if err != nil {
			return nil, opts, err
		}
		opts.Scheme = scheme
	}
	// ws/wc set the structural and contains predicate weights; absent
	// parameters keep the library default (uniform unit weights).
	if ws := r.URL.Query().Get("ws"); ws != "" {
		v, err := strconv.ParseFloat(ws, 64)
		if err != nil || v <= 0 {
			return nil, opts, errBadWeight
		}
		opts.Weights.Structural = v
	}
	if wc := r.URL.Query().Get("wc"); wc != "" {
		v, err := strconv.ParseFloat(wc, 64)
		if err != nil || v <= 0 {
			return nil, opts, errBadWeight
		}
		opts.Weights.Contains = v
	}
	return q, opts, nil
}

// maxK bounds the k parameter of one request; maxOffset bounds how deep
// pagination may reach into the ranking.
const (
	maxK      = 1000
	maxOffset = 10000
)

var (
	errMissingQuery = jsonError("missing q parameter")
	errBadK         = jsonError("k must be an integer between 1 and 1000")
	errBadOffset    = jsonError("offset must be an integer between 0 and 10000")
	errBadWeight    = jsonError("ws and wc must be positive numbers")
)

type jsonError string

func (e jsonError) Error() string { return string(e) }

type searchAnswer struct {
	Rank        int      `json:"rank"`
	Doc         string   `json:"doc"`
	Path        string   `json:"path"`
	ID          string   `json:"id,omitempty"`
	Structural  float64  `json:"structural"`
	Keyword     float64  `json:"keyword"`
	Relaxations int      `json:"relaxations"`
	Relaxed     []string `json:"relaxed,omitempty"`
	Snippet     string   `json:"snippet,omitempty"`
}

type searchResponse struct {
	Query string `json:"query"`
	// Algo names the algorithm that evaluated the search: the planner's
	// per-query choice under the default Auto mode (or "mixed" when
	// member documents chose differently), the requested algorithm
	// otherwise. AlgoReason carries the planner's explanation.
	Algo       string         `json:"algo,omitempty"`
	AlgoReason string         `json:"algo_reason,omitempty"`
	Answers    []searchAnswer `json:"answers"`
	ElapsedMS  float64        `json:"elapsed_ms"`
}

func (h *handler) search(w http.ResponseWriter, r *http.Request) {
	tParse := time.Now()
	q, opts, err := parseCommon(r)
	parseDur := time.Since(tParse)
	if err != nil {
		badRequest(w, err.Error())
		return
	}
	withWhy := r.URL.Query().Get("why") == "1"
	snippet := 0
	if ss := r.URL.Query().Get("snippet"); ss != "" {
		if n, err := strconv.Atoi(ss); err == nil && n > 0 && n <= 4096 {
			snippet = n
		}
	}
	// The request context carries client disconnects; the configured
	// timeout turns runaway evaluations into 504s instead of holding a
	// worker goroutine for an unbounded join. The span rides the same
	// context so the library layers record per-stage latency into it.
	ctx, cancel := h.requestContext(r)
	defer cancel()
	span := h.reg.StartSpan(q.String(), opts.Algorithm.String(), opts.Scheme.String(), opts.K)
	span.Rec(obs.StageParse, parseDur)
	ctx = obs.WithSpan(ctx, span)

	var m flexpath.Metrics
	opts.Metrics = &m
	start := time.Now()
	answers, err := h.coll.SearchContext(ctx, q, opts)
	status, spanStatus := searchStatus(err)
	span.Finish(spanStatus)
	if err != nil {
		writeJSON(w, status, errorBody{Error: err.Error()})
		return
	}
	resp := searchResponse{
		Query:      q.String(),
		Algo:       m.Algorithm,
		AlgoReason: m.AlgoReason,
		ElapsedMS:  float64(time.Since(start)) / 1e6,
		Answers:    make([]searchAnswer, 0, len(answers)),
	}
	for i, a := range answers {
		sa := searchAnswer{
			Rank: i + 1, Doc: a.DocName, Path: a.Path, ID: a.ID,
			Structural: a.Structural, Keyword: a.Keyword, Relaxations: a.Relaxations,
		}
		if withWhy {
			sa.Relaxed = a.Relaxed
		}
		if snippet > 0 {
			sa.Snippet = a.Snippet(snippet)
		}
		resp.Answers = append(resp.Answers, sa)
	}
	writeJSON(w, http.StatusOK, resp)
}

type relaxationsResponse struct {
	Query string `json:"query"`
	Docs  []struct {
		Doc   string                    `json:"doc"`
		Steps []flexpath.RelaxationStep `json:"steps"`
	} `json:"docs"`
}

func (h *handler) relaxations(w http.ResponseWriter, r *http.Request) {
	// parseCommon, not a bespoke parser: /relaxations accepts the same
	// parameters /search does, so the chain it reports (weighted
	// penalties included) is the chain that search evaluates.
	q, opts, err := parseCommon(r)
	if err != nil {
		badRequest(w, err.Error())
		return
	}
	// Honor the request context and the configured timeout like
	// /search: chain building over a pathological document must not
	// hold this worker past the deadline.
	ctx, cancel := h.requestContext(r)
	defer cancel()
	ropts := flexpath.RelaxationsOpts{Weights: opts.Weights, Hierarchy: opts.Hierarchy}
	resp := relaxationsResponse{Query: q.String()}
	for _, name := range h.docNames() {
		doc, _ := h.coll.Document(name)
		steps, err := doc.RelaxationsWithContext(ctx, q, ropts)
		if err != nil {
			status, _ := searchStatus(err)
			writeJSON(w, status, errorBody{Error: err.Error()})
			return
		}
		resp.Docs = append(resp.Docs, struct {
			Doc   string                    `json:"doc"`
			Steps []flexpath.RelaxationStep `json:"steps"`
		}{Doc: name, Steps: steps})
	}
	writeJSON(w, http.StatusOK, resp)
}

func (h *handler) plan(w http.ResponseWriter, r *http.Request) {
	q, opts, err := parseCommon(r)
	if err != nil {
		badRequest(w, err.Error())
		return
	}
	ctx, cancel := h.requestContext(r)
	defer cancel()
	type planDoc struct {
		Doc  string `json:"doc"`
		Plan string `json:"plan"`
	}
	var out []planDoc
	for _, name := range h.docNames() {
		doc, _ := h.coll.Document(name)
		p, err := doc.ExplainPlanContext(ctx, q, opts)
		if err != nil {
			status, _ := searchStatus(err)
			writeJSON(w, status, errorBody{Error: err.Error()})
			return
		}
		out = append(out, planDoc{Doc: name, Plan: p})
	}
	writeJSON(w, http.StatusOK, out)
}

type statsResponse struct {
	Documents int            `json:"documents"`
	Elements  int            `json:"elements"`
	PerDoc    map[string]int `json:"per_doc"`
	// Cache reports the collection-level query-result cache; DocCache
	// sums the per-document caches. Omitted when caching is disabled.
	Cache    *flexpath.CacheStats `json:"cache,omitempty"`
	DocCache *flexpath.CacheStats `json:"doc_cache,omitempty"`
	// PlanCache sums the per-document plan-template caches (chains +
	// memoized join plans). Omitted when disabled on every document.
	PlanCache *flexpath.PlanCacheStats `json:"plan_cache,omitempty"`
	// Planner aggregates the per-document cost-based planner state
	// behind the Auto algorithm.
	Planner flexpath.PlannerStats `json:"planner"`
	// Residency reports the mmap-backed serving state (resident vs
	// cold snapshot-backed documents, faults, evictions). Omitted when
	// no member is snapshot-backed and no residency cap is set.
	Residency *flexpath.ResidencyStats `json:"residency,omitempty"`
}

func (h *handler) stats(w http.ResponseWriter, _ *http.Request) {
	resp := statsResponse{
		Documents: h.coll.Len(),
		Elements:  h.coll.Nodes(),
		PerDoc:    map[string]int{},
	}
	// Members, not Document-per-name: a stats scrape must not fault
	// every cold document in (that would defeat the residency cap on
	// each scrape).
	for _, m := range h.coll.Members() {
		resp.PerDoc[m.Name] = m.Nodes
	}
	if rs := h.coll.ResidencyStats(); rs.Resident+rs.Cold > 0 || rs.Max > 0 {
		resp.Residency = &rs
	}
	if cs, ok := h.coll.CacheStats(); ok {
		resp.Cache = &cs
	}
	if ds, ok := h.coll.DocumentCacheStats(); ok {
		resp.DocCache = &ds
	}
	if ps, ok := h.coll.PlanCacheStats(); ok {
		resp.PlanCache = &ps
	}
	resp.Planner = h.coll.PlannerStats()
	writeJSON(w, http.StatusOK, resp)
}

// metrics serves the Prometheus text exposition: the registry's query
// counters, latency histograms, stage histograms and in-flight gauge,
// followed by cache counter families assembled from the collection.
func (h *handler) metrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", obs.PromContentType)
	h.reg.WritePrometheus(w)

	type cacheRow struct {
		name string
		cs   flexpath.CacheStats
		ok   bool
	}
	rows := []cacheRow{}
	if cs, ok := h.coll.CacheStats(); ok {
		rows = append(rows, cacheRow{"collection", cs, true})
	}
	if ds, ok := h.coll.DocumentCacheStats(); ok {
		rows = append(rows, cacheRow{"document", ds, true})
	}
	fmt.Fprintln(w, "# HELP flexpath_cache_hits_total Query-result cache hits.")
	fmt.Fprintln(w, "# TYPE flexpath_cache_hits_total counter")
	for _, row := range rows {
		fmt.Fprintf(w, "flexpath_cache_hits_total{cache=%q} %d\n", row.name, row.cs.Hits)
	}
	fmt.Fprintln(w, "# HELP flexpath_cache_misses_total Query-result cache misses.")
	fmt.Fprintln(w, "# TYPE flexpath_cache_misses_total counter")
	for _, row := range rows {
		fmt.Fprintf(w, "flexpath_cache_misses_total{cache=%q} %d\n", row.name, row.cs.Misses)
	}
	fmt.Fprintln(w, "# HELP flexpath_cache_evictions_total Query-result cache LRU evictions.")
	fmt.Fprintln(w, "# TYPE flexpath_cache_evictions_total counter")
	for _, row := range rows {
		fmt.Fprintf(w, "flexpath_cache_evictions_total{cache=%q} %d\n", row.name, row.cs.Evictions)
	}
	fmt.Fprintln(w, "# HELP flexpath_cache_entries Current query-result cache entries.")
	fmt.Fprintln(w, "# TYPE flexpath_cache_entries gauge")
	for _, row := range rows {
		fmt.Fprintf(w, "flexpath_cache_entries{cache=%q} %d\n", row.name, row.cs.Entries)
	}
	fmt.Fprintln(w, "# HELP flexpath_cache_capacity Effective query-result cache capacity.")
	fmt.Fprintln(w, "# TYPE flexpath_cache_capacity gauge")
	for _, row := range rows {
		fmt.Fprintf(w, "flexpath_cache_capacity{cache=%q} %d\n", row.name, row.cs.Capacity)
	}

	// Plan-template cache families: unlabeled (the caches are
	// per-document but sized and operated as one corpus-wide pool).
	pcs, _ := h.coll.PlanCacheStats()
	fmt.Fprintln(w, "# HELP flexpath_plancache_hits_total Plan-template cache hits (searches that skipped chain and plan construction).")
	fmt.Fprintln(w, "# TYPE flexpath_plancache_hits_total counter")
	fmt.Fprintf(w, "flexpath_plancache_hits_total %d\n", pcs.Hits)
	fmt.Fprintln(w, "# HELP flexpath_plancache_misses_total Plan-template cache misses (template built).")
	fmt.Fprintln(w, "# TYPE flexpath_plancache_misses_total counter")
	fmt.Fprintf(w, "flexpath_plancache_misses_total %d\n", pcs.Misses)
	fmt.Fprintln(w, "# HELP flexpath_plancache_evictions_total Plan templates displaced by the LRU policy.")
	fmt.Fprintln(w, "# TYPE flexpath_plancache_evictions_total counter")
	fmt.Fprintf(w, "flexpath_plancache_evictions_total %d\n", pcs.Evictions)
	fmt.Fprintln(w, "# HELP flexpath_plancache_dedups_total Lookups coalesced onto another goroutine's in-flight template build.")
	fmt.Fprintln(w, "# TYPE flexpath_plancache_dedups_total counter")
	fmt.Fprintf(w, "flexpath_plancache_dedups_total %d\n", pcs.Dedups)
	fmt.Fprintln(w, "# HELP flexpath_plancache_entries Current plan templates held across all documents.")
	fmt.Fprintln(w, "# TYPE flexpath_plancache_entries gauge")
	fmt.Fprintf(w, "flexpath_plancache_entries %d\n", pcs.Entries)
	fmt.Fprintln(w, "# HELP flexpath_plancache_capacity Effective plan-template capacity summed across all documents.")
	fmt.Fprintln(w, "# TYPE flexpath_plancache_capacity gauge")
	fmt.Fprintf(w, "flexpath_plancache_capacity %d\n", pcs.Capacity)

	ps := h.coll.PlannerStats()
	fmt.Fprintln(w, "# HELP flexpath_planner_choices_total Auto-mode dispatches by chosen algorithm.")
	fmt.Fprintln(w, "# TYPE flexpath_planner_choices_total counter")
	for _, k := range sortedKeys(ps.Choices) {
		fmt.Fprintf(w, "flexpath_planner_choices_total{algo=%q} %d\n", k, ps.Choices[k])
	}
	fmt.Fprintln(w, "# HELP flexpath_planner_reasons_total Auto-mode decisions by reason.")
	fmt.Fprintln(w, "# TYPE flexpath_planner_reasons_total counter")
	for _, k := range sortedKeys(ps.Reasons) {
		fmt.Fprintf(w, "flexpath_planner_reasons_total{reason=%q} %d\n", k, ps.Reasons[k])
	}
	fmt.Fprintln(w, "# HELP flexpath_planner_ns_per_unit Calibrated nanoseconds per predicted work unit.")
	fmt.Fprintln(w, "# TYPE flexpath_planner_ns_per_unit gauge")
	for _, k := range sortedKeys(ps.NsPerUnit) {
		fmt.Fprintf(w, "flexpath_planner_ns_per_unit{algo=%q} %g\n", k, ps.NsPerUnit[k])
	}
	fmt.Fprintln(w, "# HELP flexpath_planner_calibration_error Mean absolute log-ratio of actual to predicted run time (0 = exact).")
	fmt.Fprintln(w, "# TYPE flexpath_planner_calibration_error gauge")
	for _, k := range sortedKeys(ps.CalibrationError) {
		fmt.Fprintf(w, "flexpath_planner_calibration_error{algo=%q} %g\n", k, ps.CalibrationError[k])
	}
	fmt.Fprintln(w, "# HELP flexpath_planner_restart_rate EWMA of restarts per plan-based Auto run (feeds the DPO demotion guard).")
	fmt.Fprintln(w, "# TYPE flexpath_planner_restart_rate gauge")
	fmt.Fprintf(w, "flexpath_planner_restart_rate %g\n", ps.RestartRate)
	fmt.Fprintln(w, "# HELP flexpath_planner_observations_total Auto runs that fed the planner's calibrator.")
	fmt.Fprintln(w, "# TYPE flexpath_planner_observations_total counter")
	fmt.Fprintf(w, "flexpath_planner_observations_total %d\n", ps.Observations)

	fmt.Fprintln(w, "# HELP flexpath_server_inflight_requests Query requests admitted and currently executing.")
	fmt.Fprintln(w, "# TYPE flexpath_server_inflight_requests gauge")
	fmt.Fprintf(w, "flexpath_server_inflight_requests %d\n", h.srv.inFlight.Load())
	fmt.Fprintln(w, "# HELP flexpath_server_max_inflight Configured admission limit for query requests (0 = unlimited).")
	fmt.Fprintln(w, "# TYPE flexpath_server_max_inflight gauge")
	fmt.Fprintf(w, "flexpath_server_max_inflight %d\n", cap(h.sem))
	fmt.Fprintln(w, "# HELP flexpath_server_shed_total Query requests shed by the admission limit (503).")
	fmt.Fprintln(w, "# TYPE flexpath_server_shed_total counter")
	fmt.Fprintf(w, "flexpath_server_shed_total %d\n", h.srv.shed.Load())
	fmt.Fprintln(w, "# HELP flexpath_server_panics_total Handler panics recovered into 500 responses.")
	fmt.Fprintln(w, "# TYPE flexpath_server_panics_total counter")
	fmt.Fprintf(w, "flexpath_server_panics_total %d\n", h.srv.panics.Load())

	obs.WriteMetric(w, "flexpath_server_bulk_inflight", "gauge",
		"Bulk admin batches currently executing.", float64(h.srv.bulkInFlight.Load()))
	obs.WriteMetric(w, "flexpath_server_bulk_max_inflight", "gauge",
		"Configured bulk batch concurrency bound (0 = unlimited).", float64(cap(h.bulkSem)))
	obs.WriteMetric(w, "flexpath_server_bulk_rejected_total", "counter",
		"Bulk batches rejected by the concurrency bound (429).", float64(h.srv.bulkRejected.Load()))
	obs.WriteMetric(w, "flexpath_server_bulk_ops_applied_total", "counter",
		"Individual bulk operations applied.", float64(h.srv.bulkApplied.Load()))
	obs.WriteMetric(w, "flexpath_server_bulk_ops_failed_total", "counter",
		"Individual bulk operations that failed.", float64(h.srv.bulkFailed.Load()))

	if h.dur != nil {
		s := h.dur.Stats()
		obs.WriteMetric(w, "flexpath_wal_appended_records_total", "counter",
			"Mutation records appended to the write-ahead log.", float64(s.AppendedRecords))
		obs.WriteMetric(w, "flexpath_wal_fsyncs_total", "counter",
			"fsync calls on the write-ahead log.", float64(s.Fsyncs))
		obs.WriteMetric(w, "flexpath_wal_fsynced_records_total", "counter",
			"Records made durable; ahead of fsyncs_total when group commit is batching.", float64(s.FsyncedRecords))
		obs.WriteMetric(w, "flexpath_wal_replayed_records_total", "counter",
			"Records replayed from the log during boot recovery.", float64(s.ReplayedRecords))
		obs.WriteMetric(w, "flexpath_wal_torn_bytes_total", "counter",
			"Torn tail bytes truncated during boot recovery.", float64(s.TornBytesTruncated))
		obs.WriteMetric(w, "flexpath_wal_checkpoints_total", "counter",
			"Checkpoints completed by this process.", float64(s.Checkpoints))
		obs.WriteMetric(w, "flexpath_wal_checkpoint_errors_total", "counter",
			"Checkpoint attempts that failed.", float64(s.CheckpointErrors))
		obs.WriteMetric(w, "flexpath_wal_checkpoint_lsn", "gauge",
			"LSN of the checkpoint boot recovery started from (0 = none).", float64(s.CheckpointLSN))
		obs.WriteMetric(w, "flexpath_wal_last_checkpoint_duration_seconds", "gauge",
			"Wall time of the most recent checkpoint.", s.LastCheckpointDuration.Seconds())
		obs.WriteMetric(w, "flexpath_wal_log_bytes", "gauge",
			"Bytes across live write-ahead log segments.", float64(s.LogBytes))
		obs.WriteMetric(w, "flexpath_wal_log_segments", "gauge",
			"Live write-ahead log segment files.", float64(s.LogSegments))
	}

	rs := h.coll.ResidencyStats()
	obs.WriteMetric(w, "flexpath_resident_docs", "gauge",
		"Snapshot-backed documents currently decoded and searchable.", float64(rs.Resident))
	obs.WriteMetric(w, "flexpath_resident_docs_cold", "gauge",
		"Snapshot-backed documents currently cold (mapped, not decoded).", float64(rs.Cold))
	obs.WriteMetric(w, "flexpath_resident_docs_pinned", "gauge",
		"Documents with no snapshot backing (always resident, exempt from the cap).", float64(rs.Pinned))
	obs.WriteMetric(w, "flexpath_resident_docs_max", "gauge",
		"Configured residency cap for snapshot-backed documents (0 = unbounded).", float64(rs.Max))
	obs.WriteMetric(w, "flexpath_resident_faults_total", "counter",
		"Cold documents decoded on demand by a search.", float64(rs.Faults))
	obs.WriteMetric(w, "flexpath_resident_evictions_total", "counter",
		"Documents evicted by the residency cap (decoded state dropped, mapping kept).", float64(rs.Evictions))

	fmt.Fprintln(w, "# HELP flexpath_documents Documents being served.")
	fmt.Fprintln(w, "# TYPE flexpath_documents gauge")
	fmt.Fprintf(w, "flexpath_documents %d\n", h.coll.Len())
	fmt.Fprintln(w, "# HELP flexpath_elements Total indexed element nodes.")
	fmt.Fprintln(w, "# TYPE flexpath_elements gauge")
	fmt.Fprintf(w, "flexpath_elements %d\n", h.coll.Nodes())
}

type slowEntryJSON struct {
	Time        string             `json:"time"`
	Query       string             `json:"query"`
	Algo        string             `json:"algo"`
	Scheme      string             `json:"scheme"`
	Status      string             `json:"status"`
	K           int                `json:"k"`
	Relaxations int                `json:"relaxations"`
	CacheHit    bool               `json:"cache_hit"`
	TotalMS     float64            `json:"total_ms"`
	StagesMS    map[string]float64 `json:"stages_ms"`
}

type latencySummaryJSON struct {
	Algo    string  `json:"algo"`
	Count   uint64  `json:"count"`
	P50MS   float64 `json:"p50_ms"`
	P95MS   float64 `json:"p95_ms"`
	P99MS   float64 `json:"p99_ms"`
	MeanMS  float64 `json:"mean_ms"`
	TotalMS float64 `json:"total_ms"`
}

type slowlogResponse struct {
	ThresholdMS float64              `json:"threshold_ms"`
	Entries     []slowEntryJSON      `json:"entries"`
	Latency     []latencySummaryJSON `json:"latency"`
}

// slowlog serves the N slowest recent queries with their per-stage time
// breakdown, plus per-algorithm latency quantiles (p50/p95/p99 are
// bucket upper bounds, exact within a factor of two).
func (h *handler) slowlog(w http.ResponseWriter, r *http.Request) {
	n := 32
	if ns := r.URL.Query().Get("n"); ns != "" {
		if v, err := strconv.Atoi(ns); err == nil && v > 0 && v <= 1024 {
			n = v
		}
	}
	log := h.reg.SlowLog()
	resp := slowlogResponse{
		ThresholdMS: float64(log.Threshold()) / 1e6,
		Entries:     []slowEntryJSON{},
		Latency:     []latencySummaryJSON{},
	}
	stageNames := obs.StageNames()
	for _, e := range log.Top(n) {
		stages := make(map[string]float64, len(stageNames))
		for i, name := range stageNames {
			stages[name] = float64(e.Stages[i]) / 1e6
		}
		resp.Entries = append(resp.Entries, slowEntryJSON{
			Time:        e.Time.UTC().Format(time.RFC3339Nano),
			Query:       e.Query,
			Algo:        e.Algo,
			Scheme:      e.Scheme,
			Status:      e.Status,
			K:           e.K,
			Relaxations: e.Relaxations,
			CacheHit:    e.CacheHit,
			TotalMS:     float64(e.Total) / 1e6,
			StagesMS:    stages,
		})
	}
	algos, hists := h.reg.LatencyByAlgo()
	for i, algo := range algos {
		s := hists[i]
		resp.Latency = append(resp.Latency, latencySummaryJSON{
			Algo:    algo,
			Count:   s.Count,
			P50MS:   float64(s.Quantile(0.50)) / 1e6,
			P95MS:   float64(s.Quantile(0.95)) / 1e6,
			P99MS:   float64(s.Quantile(0.99)) / 1e6,
			MeanMS:  float64(s.Mean()) / 1e6,
			TotalMS: float64(s.Sum) / 1e6,
		})
	}
	writeJSON(w, http.StatusOK, resp)
}

// maxAdminBody bounds an /admin/add or /admin/replace document upload.
const maxAdminBody = 64 << 20

// adminResponse reports the corpus state after a mutation.
type adminResponse struct {
	Status    string `json:"status"`
	Name      string `json:"name"`
	Documents int    `json:"documents"`
	Elements  int    `json:"elements"`
}

// adminName enforces the shared preconditions of the mutation endpoints:
// POST only, with a non-empty name parameter.
func adminName(w http.ResponseWriter, r *http.Request) (string, bool) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeJSON(w, http.StatusMethodNotAllowed, errorBody{Error: "POST required"})
		return "", false
	}
	name := r.URL.Query().Get("name")
	if name == "" {
		badRequest(w, "missing name parameter")
		return "", false
	}
	return name, true
}

// adminDoc parses the request body as an XML document (or snapshot-free
// XML only: uploads are always parsed, never trusted as binary).
func (h *handler) adminDoc(w http.ResponseWriter, r *http.Request) (*flexpath.Document, bool) {
	doc, err := flexpath.Load(http.MaxBytesReader(w, r.Body, maxAdminBody))
	if err != nil {
		badRequest(w, "bad document: "+err.Error())
		return nil, false
	}
	return doc, true
}

// adminBody reads the raw (bounded) upload body for the durable path,
// which logs the exact bytes before parsing them.
func adminBody(w http.ResponseWriter, r *http.Request) ([]byte, bool) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxAdminBody))
	if err != nil {
		badRequest(w, "reading body: "+err.Error())
		return nil, false
	}
	return body, true
}

// durableStatus maps a DurableCollection mutation error to an HTTP
// status: precondition sentinels become client errors, anything else —
// an I/O failure in the log — is a 500.
func durableStatus(err error) int {
	switch {
	case errors.Is(err, flexpath.ErrDocumentExists):
		return http.StatusConflict
	case errors.Is(err, flexpath.ErrNoDocument):
		return http.StatusNotFound
	case errors.Is(err, flexpath.ErrBadDocument):
		return http.StatusBadRequest
	}
	return http.StatusInternalServerError
}

func (h *handler) adminOK(w http.ResponseWriter, name string) {
	writeJSON(w, http.StatusOK, adminResponse{
		Status: "ok", Name: name,
		Documents: h.coll.Len(), Elements: h.coll.Nodes(),
	})
}

// adminAdd inserts the posted XML document under ?name=.
func (h *handler) adminAdd(w http.ResponseWriter, r *http.Request) {
	name, ok := adminName(w, r)
	if !ok {
		return
	}
	if h.dur != nil {
		body, ok := adminBody(w, r)
		if !ok {
			return
		}
		if err := h.dur.Add(name, body); err != nil {
			writeJSON(w, durableStatus(err), errorBody{Error: err.Error()})
			return
		}
		h.adminOK(w, name)
		return
	}
	doc, ok := h.adminDoc(w, r)
	if !ok {
		return
	}
	if err := h.coll.Add(name, doc); err != nil {
		writeJSON(w, http.StatusConflict, errorBody{Error: err.Error()})
		return
	}
	h.adminOK(w, name)
}

// adminRemove deletes the document named by ?name=.
func (h *handler) adminRemove(w http.ResponseWriter, r *http.Request) {
	name, ok := adminName(w, r)
	if !ok {
		return
	}
	if h.dur != nil {
		if err := h.dur.Remove(name); err != nil {
			writeJSON(w, durableStatus(err), errorBody{Error: err.Error()})
			return
		}
		h.adminOK(w, name)
		return
	}
	if err := h.coll.Remove(name); err != nil {
		writeJSON(w, http.StatusNotFound, errorBody{Error: err.Error()})
		return
	}
	h.adminOK(w, name)
}

// adminReplace swaps the document named by ?name= for the posted XML.
func (h *handler) adminReplace(w http.ResponseWriter, r *http.Request) {
	name, ok := adminName(w, r)
	if !ok {
		return
	}
	if h.dur != nil {
		body, ok := adminBody(w, r)
		if !ok {
			return
		}
		if err := h.dur.Replace(name, body); err != nil {
			writeJSON(w, durableStatus(err), errorBody{Error: err.Error()})
			return
		}
		h.adminOK(w, name)
		return
	}
	doc, ok := h.adminDoc(w, r)
	if !ok {
		return
	}
	if err := h.coll.Replace(name, doc); err != nil {
		writeJSON(w, http.StatusNotFound, errorBody{Error: err.Error()})
		return
	}
	h.adminOK(w, name)
}

// maxBulkBody bounds one /admin/bulk batch upload.
const maxBulkBody = 256 << 20

// bulkOp is one line of an NDJSON /admin/bulk batch.
type bulkOp struct {
	Op   string `json:"op"`
	Name string `json:"name"`
	Doc  string `json:"doc,omitempty"`
}

type bulkOpError struct {
	Line  int    `json:"line"`
	Name  string `json:"name,omitempty"`
	Error string `json:"error"`
}

type bulkResponse struct {
	Applied   int           `json:"applied"`
	Failed    int           `json:"failed"`
	Errors    []bulkOpError `json:"errors,omitempty"`
	Documents int           `json:"documents"`
	Elements  int           `json:"elements"`
}

// adminBulk applies an NDJSON batch of mutations — one
// {"op","name","doc"} object per line, with ops add, replace, upsert and
// remove (the latter two retry-safe, the right verbs for ingest
// pipelines that resend after ambiguous failures). At most maxBulk
// batches execute concurrently; the bound is checked before the body is
// read, so a rejected client gets its 429 without uploading anything.
// The response always carries per-line errors with a 200: partial
// application is reported, not rolled back (each line is individually
// durable by the time it is counted).
func (h *handler) adminBulk(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeJSON(w, http.StatusMethodNotAllowed, errorBody{Error: "POST required"})
		return
	}
	if h.bulkSem != nil {
		select {
		case h.bulkSem <- struct{}{}:
			defer func() { <-h.bulkSem }()
		default:
			h.srv.bulkRejected.Add(1)
			w.Header().Set("Retry-After", "1")
			writeJSON(w, http.StatusTooManyRequests,
				errorBody{Error: "too many bulk batches in flight, retry later"})
			return
		}
	}
	h.srv.bulkInFlight.Add(1)
	defer h.srv.bulkInFlight.Add(-1)

	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBulkBody))
	var resp bulkResponse
	for line := 1; ; line++ {
		var op bulkOp
		if err := dec.Decode(&op); err == io.EOF {
			break
		} else if err != nil {
			// A malformed line leaves no way to resync the stream; report
			// and stop rather than misapply the remainder.
			resp.Failed++
			h.srv.bulkFailed.Add(1)
			resp.Errors = append(resp.Errors, bulkOpError{Line: line, Error: "bad batch line: " + err.Error()})
			break
		}
		if err := h.applyBulkOp(op); err != nil {
			resp.Failed++
			h.srv.bulkFailed.Add(1)
			resp.Errors = append(resp.Errors, bulkOpError{Line: line, Name: op.Name, Error: err.Error()})
			continue
		}
		resp.Applied++
		h.srv.bulkApplied.Add(1)
	}
	resp.Documents = h.coll.Len()
	resp.Elements = h.coll.Nodes()
	writeJSON(w, http.StatusOK, resp)
}

// applyBulkOp routes one batch line through the durable collection when
// one is configured, directly to the in-memory collection otherwise.
func (h *handler) applyBulkOp(op bulkOp) error {
	if op.Name == "" {
		return errors.New("missing name")
	}
	if h.dur != nil {
		switch op.Op {
		case "add":
			return h.dur.Add(op.Name, []byte(op.Doc))
		case "replace":
			return h.dur.Replace(op.Name, []byte(op.Doc))
		case "upsert":
			return h.dur.Upsert(op.Name, []byte(op.Doc))
		case "remove":
			_, err := h.dur.RemoveIfPresent(op.Name)
			return err
		}
		return fmt.Errorf("unknown op %q", op.Op)
	}
	switch op.Op {
	case "add", "replace", "upsert":
		doc, err := flexpath.LoadString(op.Doc)
		if err != nil {
			return err
		}
		if op.Op == "add" {
			return h.coll.Add(op.Name, doc)
		}
		if op.Op == "replace" {
			return h.coll.Replace(op.Name, doc)
		}
		// Has, not Document: existence checks must not fault a cold
		// member in just to overwrite or delete it.
		if h.coll.Has(op.Name) {
			return h.coll.Replace(op.Name, doc)
		}
		return h.coll.Add(op.Name, doc)
	case "remove":
		if !h.coll.Has(op.Name) {
			return nil
		}
		return h.coll.Remove(op.Name)
	}
	return fmt.Errorf("unknown op %q", op.Op)
}

func (h *handler) docNames() []string { return h.coll.Names() }

// sortedKeys returns a map's keys in sorted order, for deterministic
// metric rendering.
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
