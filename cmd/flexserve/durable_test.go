package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"flexpath"
	"flexpath/internal/obs"
)

// durableServer builds a handler over a WAL-backed collection in dir and
// returns the server plus the durable handle (for Close between
// "restarts").
func durableServer(t *testing.T, dir string, maxBulk int) (*httptest.Server, *flexpath.DurableCollection) {
	t.Helper()
	dur, err := flexpath.OpenDurableCollection(dir, flexpath.DurableOptions{CheckpointEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	h, _ := newHandlerConfig(dur.Collection(), handlerConfig{admin: true, durable: dur, maxBulk: maxBulk})
	srv := httptest.NewServer(h)
	t.Cleanup(srv.Close)
	return srv, dur
}

func bulkLine(op, name, doc string) string {
	b, _ := json.Marshal(bulkOp{Op: op, Name: name, Doc: doc})
	return string(b) + "\n"
}

func TestAdminBulkNonDurable(t *testing.T) {
	hh, _ := newHandlerConfig(testColl(t), handlerConfig{admin: true})
	srv := httptest.NewServer(hh)
	defer srv.Close()

	batch := bulkLine("upsert", "a.xml", adminXML) +
		bulkLine("add", "b.xml", adminXML) +
		bulkLine("replace", "b.xml", serveXML) +
		bulkLine("remove", "a.xml", "") +
		bulkLine("remove", "never-existed.xml", "") // retry-safe: no-op, not an error
	resp, body := post(t, srv.URL+"/admin/bulk", batch)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("bulk status %d: %s", resp.StatusCode, body)
	}
	var br bulkResponse
	if err := json.Unmarshal(body, &br); err != nil {
		t.Fatal(err)
	}
	if br.Applied != 5 || br.Failed != 0 {
		t.Fatalf("applied=%d failed=%d (%s), want 5/0", br.Applied, br.Failed, body)
	}
	if br.Documents != 2 { // lib.xml + b.xml
		t.Fatalf("documents=%d, want 2", br.Documents)
	}

	// Per-line failures are reported with their line numbers; the batch
	// still applies the good lines before a malformed one stops it.
	batch = bulkLine("add", "b.xml", adminXML) + // duplicate -> error
		bulkLine("upsert", "c.xml", adminXML) +
		"{not json\n"
	resp, body = post(t, srv.URL+"/admin/bulk", batch)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("bulk status %d", resp.StatusCode)
	}
	if err := json.Unmarshal(body, &br); err != nil {
		t.Fatal(err)
	}
	if br.Applied != 1 || br.Failed != 2 || len(br.Errors) != 2 {
		t.Fatalf("applied=%d failed=%d errors=%v, want 1 applied and 2 failures", br.Applied, br.Failed, br.Errors)
	}
	if br.Errors[0].Line != 1 || br.Errors[1].Line != 3 {
		t.Fatalf("error lines %d,%d, want 1,3", br.Errors[0].Line, br.Errors[1].Line)
	}

	// GET is not a mutation.
	resp, _ = get(t, srv.URL+"/admin/bulk")
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET bulk: %d, want 405", resp.StatusCode)
	}
}

// The bulk concurrency bound rejects deterministically: a batch beyond
// maxBulk gets 429 + Retry-After before its body is read.
func TestAdminBulkBackpressure(t *testing.T) {
	hh, _ := newHandlerConfig(testColl(t), handlerConfig{admin: true, maxBulk: 1})
	h := hh.(*handler)
	srv := httptest.NewServer(hh)
	defer srv.Close()

	// First batch: a body that never finishes keeps the slot held.
	pr, pw := io.Pipe()
	defer pw.Close()
	req, err := http.NewRequest(http.MethodPost, srv.URL+"/admin/bulk", pr)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		resp, err := http.DefaultClient.Do(req)
		if resp != nil {
			resp.Body.Close()
		}
		done <- err
	}()
	// Wait until the held batch occupies the semaphore.
	deadline := time.Now().Add(5 * time.Second)
	for h.srv.bulkInFlight.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("first batch never started")
		}
		time.Sleep(time.Millisecond)
	}

	resp, body := post(t, srv.URL+"/admin/bulk", bulkLine("upsert", "x.xml", adminXML))
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("second batch: %d (%s), want 429", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	if got := h.srv.bulkRejected.Load(); got != 1 {
		t.Fatalf("bulkRejected = %d, want 1", got)
	}

	// Release the held batch; it completes normally.
	if _, err := io.WriteString(pw, bulkLine("upsert", "y.xml", adminXML)); err != nil {
		t.Fatal(err)
	}
	pw.Close()
	if err := <-done; err != nil {
		t.Fatalf("held batch failed: %v", err)
	}

	// The rejection is visible in /metrics and the exposition stays valid.
	_, metrics := get(t, srv.URL+"/metrics")
	if !strings.Contains(string(metrics), "flexpath_server_bulk_rejected_total 1") {
		t.Error("bulk rejection not exported")
	}
	if err := obs.ValidateExposition(metrics); err != nil {
		t.Errorf("invalid exposition: %v", err)
	}
}

// End-to-end durability through the HTTP layer: mutate over /admin/,
// "crash" (close without checkpoint), restart on the same directory, and
// search results must be byte-identical while the recovery counters show
// up in /metrics.
func TestDurableAdminRecovery(t *testing.T) {
	dir := t.TempDir()
	srv, dur := durableServer(t, dir, 0)

	if resp, body := post(t, srv.URL+"/admin/add?name=lib.xml", serveXML); resp.StatusCode != http.StatusOK {
		t.Fatalf("add: %d %s", resp.StatusCode, body)
	}
	if resp, _ := post(t, srv.URL+"/admin/add?name=lib.xml", serveXML); resp.StatusCode != http.StatusConflict {
		t.Fatalf("duplicate add: %d, want 409", resp.StatusCode)
	}
	if resp, _ := post(t, srv.URL+"/admin/replace?name=ghost.xml", serveXML); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("replace missing: %d, want 404", resp.StatusCode)
	}
	if resp, _ := post(t, srv.URL+"/admin/remove?name=ghost.xml", ""); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("remove missing: %d, want 404", resp.StatusCode)
	}
	if resp, _ := post(t, srv.URL+"/admin/add?name=bad.xml", "<unclosed"); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad XML: %d, want 400", resp.StatusCode)
	}
	if resp, body := post(t, srv.URL+"/admin/bulk",
		bulkLine("upsert", "extra.xml", adminXML)+bulkLine("remove", "nothing.xml", "")); resp.StatusCode != http.StatusOK {
		t.Fatalf("bulk: %d %s", resp.StatusCode, body)
	}

	_, want := get(t, fmt.Sprintf("%s/search?q=%s&k=10", srv.URL, escape(serveQuery)))

	srv.Close()
	dur.Close()

	srv2, dur2 := durableServer(t, dir, 0)
	defer dur2.Close()
	if s := dur2.Stats(); s.ReplayedRecords == 0 {
		t.Fatal("no records replayed on restart")
	}
	_, got := get(t, fmt.Sprintf("%s/search?q=%s&k=10", srv2.URL, escape(serveQuery)))
	// Byte-identical ranking: compare the answer payloads (the response's
	// elapsed_ms is wall time and naturally differs).
	var wantResp, gotResp searchResponse
	if err := json.Unmarshal(want, &wantResp); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(got, &gotResp); err != nil {
		t.Fatal(err)
	}
	wantAns, _ := json.Marshal(wantResp.Answers)
	gotAns, _ := json.Marshal(gotResp.Answers)
	if len(wantResp.Answers) == 0 || string(gotAns) != string(wantAns) {
		t.Fatalf("search after recovery differs:\n%s\nvs\n%s", gotAns, wantAns)
	}

	_, metrics := get(t, srv2.URL+"/metrics")
	for _, family := range []string{
		"flexpath_wal_appended_records_total",
		"flexpath_wal_replayed_records_total",
		"flexpath_wal_fsynced_records_total",
		"flexpath_wal_log_bytes",
	} {
		if !strings.Contains(string(metrics), family) {
			t.Errorf("metrics missing %s", family)
		}
	}
	if err := obs.ValidateExposition(metrics); err != nil {
		t.Errorf("invalid exposition with WAL families: %v", err)
	}
}
