package main

import (
	"strings"
	"testing"
)

// testThresholds pins the historical cutoffs the expectations below were
// written against (tighter than the shipping timing defaults).
var testThresholds = thresholds{fail: 1.25, warn: 1.10, allocFail: 1.25, allocWarn: 1.10}

func gateFile(scale float64, perturb map[string]float64) benchFile {
	var recs []map[string]any
	for _, q := range []string{"XQ1", "XQ2"} {
		for _, k := range []float64{50, 200} {
			rec := map[string]any{"figure": "gate", "query": q, "K": k}
			for _, col := range []string{"DPO_ms", "SSO_ms", "Hybrid_ms", "Auto_ms"} {
				v := scale * (1 + k/100)
				if p, ok := perturb[q+"/"+col]; ok {
					v *= p
				}
				rec[col] = v
			}
			recs = append(recs, rec)
		}
	}
	return benchFile{Runs: 5, Seed: 42, Records: recs}
}

func TestCompareIdentical(t *testing.T) {
	r := compare(gateFile(1, nil), gateFile(1, nil), testThresholds)
	if r.Failed {
		t.Fatalf("identical runs failed: %+v", r)
	}
	for _, m := range r.Measurements {
		if m.Status != "ok" {
			t.Errorf("%s: status %q", m.Key, m.Status)
		}
	}
}

// TestCompareSlowerMachine: a uniformly 3x slower machine must pass —
// the median normalization absorbs machine speed.
func TestCompareSlowerMachine(t *testing.T) {
	r := compare(gateFile(1, nil), gateFile(3, nil), testThresholds)
	if r.Failed {
		t.Fatalf("uniform slowdown tripped the gate: %+v", r)
	}
	if r.SpeedFactor < 2.9 || r.SpeedFactor > 3.1 {
		t.Errorf("speed factor = %v, want ~3", r.SpeedFactor)
	}
}

// TestCompareLocalRegression: one measurement 2x slower while the rest
// hold must fail, even on a slower machine.
func TestCompareLocalRegression(t *testing.T) {
	cur := gateFile(2, map[string]float64{"XQ2/SSO_ms": 2.0})
	r := compare(gateFile(1, nil), cur, testThresholds)
	if !r.Failed {
		t.Fatal("2x local regression passed the gate")
	}
	failed := 0
	for _, m := range r.Measurements {
		if m.Status == "fail" {
			if !strings.Contains(m.Key, "SSO_ms") || !strings.Contains(m.Key, "XQ2") {
				t.Errorf("wrong measurement flagged: %s", m.Key)
			}
			failed++
		}
	}
	if failed != 2 { // XQ2 at K=50 and K=200
		t.Errorf("failed measurements = %d, want 2", failed)
	}
}

// TestCompareWarnBand: a 15% local slowdown warns but does not fail.
func TestCompareWarnBand(t *testing.T) {
	cur := gateFile(1, map[string]float64{"XQ1/DPO_ms": 1.15})
	r := compare(gateFile(1, nil), cur, testThresholds)
	if r.Failed {
		t.Fatalf("15%% slowdown failed the gate: %+v", r)
	}
	warned := 0
	for _, m := range r.Measurements {
		if m.Status == "warn" {
			warned++
		}
	}
	if warned == 0 {
		t.Error("no warning for 15% slowdown")
	}
}

// TestCompareMissingRows: a changed gate workload (rows or columns that
// no longer pair up) must fail so a regression can't hide behind a
// rename without a baseline refresh.
func TestCompareMissingRows(t *testing.T) {
	cur := gateFile(1, nil)
	cur.Records = cur.Records[:len(cur.Records)-1]
	r := compare(gateFile(1, nil), cur, testThresholds)
	if !r.Failed {
		t.Fatal("dropped row passed the gate")
	}
	if len(r.Missing) == 0 {
		t.Error("missing rows not reported")
	}
}

func TestRecordKeyIgnoresTimings(t *testing.T) {
	a := map[string]any{"figure": "gate", "query": "XQ1", "K": 50.0, "DPO_ms": 1.0}
	b := map[string]any{"figure": "gate", "query": "XQ1", "K": 50.0, "DPO_ms": 9.9}
	if recordKey(a) != recordKey(b) {
		t.Errorf("keys differ: %q vs %q", recordKey(a), recordKey(b))
	}
}

// allocFile builds a gate-shaped file with one alloc column per record.
func allocFile(scale float64, allocs map[string]float64) benchFile {
	bf := gateFile(scale, nil)
	for _, rec := range bf.Records {
		q := rec["query"].(string)
		v := 1000.0
		if a, ok := allocs[q]; ok {
			v = a
		}
		rec["DPO_allocs"] = v
	}
	return bf
}

// TestCompareAllocsRawRatio: alloc counts are machine-independent, so a
// 3x slower machine with identical allocs passes, while a 2x alloc
// growth fails even though every timing moved together.
func TestCompareAllocsRawRatio(t *testing.T) {
	base := allocFile(1, nil)
	cur := allocFile(3, nil) // slower machine, same allocs
	r := compare(base, cur, testThresholds)
	if r.Failed {
		t.Fatalf("identical allocs on a slower machine tripped the gate: %+v", r)
	}
	cur = allocFile(3, map[string]float64{"XQ2": 2000})
	r = compare(base, cur, testThresholds)
	if !r.Failed {
		t.Fatal("2x alloc regression passed the gate")
	}
	for _, m := range r.Measurements {
		if m.Status == "fail" && !strings.Contains(m.Key, "_allocs") {
			t.Errorf("non-alloc measurement flagged: %s", m.Key)
		}
	}
}

// TestCompareAllocsZeroBaseline: 0 -> 0 is unchanged; 0 -> nonzero is an
// infinite-ratio failure (new allocations appeared on an alloc-free row).
func TestCompareAllocsZeroBaseline(t *testing.T) {
	base := allocFile(1, map[string]float64{"XQ1": 0, "XQ2": 0})
	same := allocFile(1, map[string]float64{"XQ1": 0, "XQ2": 0})
	if r := compare(base, same, testThresholds); r.Failed {
		t.Fatalf("0->0 allocs tripped the gate: %+v", r)
	}
	cur := allocFile(1, map[string]float64{"XQ1": 0, "XQ2": 5})
	if r := compare(base, cur, testThresholds); !r.Failed {
		t.Fatal("0->5 allocs passed the gate")
	}
}

// TestCompareAllocsExcludedFromMedian: alloc ratios must not feed the
// machine-speed median, or a uniform alloc improvement would make the
// unchanged timings look like regressions.
func TestCompareAllocsExcludedFromMedian(t *testing.T) {
	base := allocFile(1, nil)
	cur := allocFile(1, map[string]float64{"XQ1": 100, "XQ2": 100}) // 10x fewer allocs
	r := compare(base, cur, testThresholds)
	if r.Failed {
		t.Fatalf("alloc improvement tripped the gate: %+v", r)
	}
	if r.SpeedFactor < 0.99 || r.SpeedFactor > 1.01 {
		t.Errorf("speed factor = %v, want ~1 (allocs leaked into the median)", r.SpeedFactor)
	}
}

// TestCompareDistinctThresholds: with the shipping defaults (timing 1.5,
// allocs 1.25) a 1.4x local timing drift — routine on noisy CI hardware —
// passes, while the same 1.4x growth in the noise-free allocs/op fails.
func TestCompareDistinctThresholds(t *testing.T) {
	ship := thresholds{fail: 1.5, warn: 1.15, allocFail: 1.25, allocWarn: 1.10}
	cur := gateFile(1, map[string]float64{"XQ1/DPO_ms": 1.4})
	if r := compare(gateFile(1, nil), cur, ship); r.Failed {
		t.Fatalf("1.4x timing drift failed the shipping gate: %+v", r)
	}
	base := allocFile(1, nil)
	aCur := allocFile(1, map[string]float64{"XQ2": 1400})
	if r := compare(base, aCur, ship); !r.Failed {
		t.Fatal("1.4x alloc growth passed the shipping gate")
	}
}

func TestRecordKeyIgnoresAllocs(t *testing.T) {
	a := map[string]any{"figure": "gate", "query": "XQ1", "K": 50.0, "DPO_allocs": 10.0}
	b := map[string]any{"figure": "gate", "query": "XQ1", "K": 50.0, "DPO_allocs": 99.0}
	if recordKey(a) != recordKey(b) {
		t.Errorf("keys differ: %q vs %q", recordKey(a), recordKey(b))
	}
}
