package main

import (
	"strings"
	"testing"
)

func gateFile(scale float64, perturb map[string]float64) benchFile {
	var recs []map[string]any
	for _, q := range []string{"XQ1", "XQ2"} {
		for _, k := range []float64{50, 200} {
			rec := map[string]any{"figure": "gate", "query": q, "K": k}
			for _, col := range []string{"DPO_ms", "SSO_ms", "Hybrid_ms", "Auto_ms"} {
				v := scale * (1 + k/100)
				if p, ok := perturb[q+"/"+col]; ok {
					v *= p
				}
				rec[col] = v
			}
			recs = append(recs, rec)
		}
	}
	return benchFile{Runs: 5, Seed: 42, Records: recs}
}

func TestCompareIdentical(t *testing.T) {
	r := compare(gateFile(1, nil), gateFile(1, nil), 1.25, 1.10)
	if r.Failed {
		t.Fatalf("identical runs failed: %+v", r)
	}
	for _, m := range r.Measurements {
		if m.Status != "ok" {
			t.Errorf("%s: status %q", m.Key, m.Status)
		}
	}
}

// TestCompareSlowerMachine: a uniformly 3x slower machine must pass —
// the median normalization absorbs machine speed.
func TestCompareSlowerMachine(t *testing.T) {
	r := compare(gateFile(1, nil), gateFile(3, nil), 1.25, 1.10)
	if r.Failed {
		t.Fatalf("uniform slowdown tripped the gate: %+v", r)
	}
	if r.SpeedFactor < 2.9 || r.SpeedFactor > 3.1 {
		t.Errorf("speed factor = %v, want ~3", r.SpeedFactor)
	}
}

// TestCompareLocalRegression: one measurement 2x slower while the rest
// hold must fail, even on a slower machine.
func TestCompareLocalRegression(t *testing.T) {
	cur := gateFile(2, map[string]float64{"XQ2/SSO_ms": 2.0})
	r := compare(gateFile(1, nil), cur, 1.25, 1.10)
	if !r.Failed {
		t.Fatal("2x local regression passed the gate")
	}
	failed := 0
	for _, m := range r.Measurements {
		if m.Status == "fail" {
			if !strings.Contains(m.Key, "SSO_ms") || !strings.Contains(m.Key, "XQ2") {
				t.Errorf("wrong measurement flagged: %s", m.Key)
			}
			failed++
		}
	}
	if failed != 2 { // XQ2 at K=50 and K=200
		t.Errorf("failed measurements = %d, want 2", failed)
	}
}

// TestCompareWarnBand: a 15% local slowdown warns but does not fail.
func TestCompareWarnBand(t *testing.T) {
	cur := gateFile(1, map[string]float64{"XQ1/DPO_ms": 1.15})
	r := compare(gateFile(1, nil), cur, 1.25, 1.10)
	if r.Failed {
		t.Fatalf("15%% slowdown failed the gate: %+v", r)
	}
	warned := 0
	for _, m := range r.Measurements {
		if m.Status == "warn" {
			warned++
		}
	}
	if warned == 0 {
		t.Error("no warning for 15% slowdown")
	}
}

// TestCompareMissingRows: a changed gate workload (rows or columns that
// no longer pair up) must fail so a regression can't hide behind a
// rename without a baseline refresh.
func TestCompareMissingRows(t *testing.T) {
	cur := gateFile(1, nil)
	cur.Records = cur.Records[:len(cur.Records)-1]
	r := compare(gateFile(1, nil), cur, 1.25, 1.10)
	if !r.Failed {
		t.Fatal("dropped row passed the gate")
	}
	if len(r.Missing) == 0 {
		t.Error("missing rows not reported")
	}
}

func TestRecordKeyIgnoresTimings(t *testing.T) {
	a := map[string]any{"figure": "gate", "query": "XQ1", "K": 50.0, "DPO_ms": 1.0}
	b := map[string]any{"figure": "gate", "query": "XQ1", "K": 50.0, "DPO_ms": 9.9}
	if recordKey(a) != recordKey(b) {
		t.Errorf("keys differ: %q vs %q", recordKey(a), recordKey(b))
	}
}
