// Command benchdiff compares a flexbench -json run against a checked-in
// baseline and fails on latency regressions. It is the CI perf gate:
//
//	flexbench -fig gate -runs 5 -seed 42 -json current.json
//	benchdiff -baseline bench_baseline.json -current current.json
//
// CI machines and the machine that produced the baseline differ in
// speed, so raw ratios are useless. benchdiff normalizes: it computes
// the current/baseline ratio of every timing column of every record,
// takes the median ratio as the machine-speed factor, and judges each
// measurement by its ratio relative to that median. A genuine
// regression makes a few measurements slower than the rest moved; a
// slower machine moves everything together and trips nothing.
//
//	benchdiff -update    # re-time the gate workload and rewrite the baseline
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"os/exec"
	"sort"
	"strings"
)

type benchFile struct {
	Runs    int              `json:"runs"`
	Seed    int64            `json:"seed"`
	Records []map[string]any `json:"records"`
}

type measurement struct {
	Key      string  `json:"key"` // "figure/query/K column"
	Baseline float64 `json:"baseline_ms"`
	Current  float64 `json:"current_ms"`
	Ratio    float64 `json:"ratio"`      // raw current/baseline
	Normal   float64 `json:"normalized"` // ratio / median ratio
	Status   string  `json:"status"`     // "ok", "warn", "fail"
}

type report struct {
	SpeedFactor  float64       `json:"speed_factor"` // median raw ratio
	FailOver     float64       `json:"fail_over"`
	WarnOver     float64       `json:"warn_over"`
	Measurements []measurement `json:"measurements"`
	Missing      []string      `json:"missing,omitempty"` // keys only one side has
	Failed       bool          `json:"failed"`
}

// recordKey identifies a record by its non-timing columns, so baseline
// and current rows pair up no matter their order in the file.
func recordKey(rec map[string]any) string {
	keys := make([]string, 0, len(rec))
	for k := range rec {
		if strings.HasSuffix(k, "_ms") {
			continue
		}
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var sb strings.Builder
	for _, k := range keys {
		fmt.Fprintf(&sb, "%s=%v ", k, rec[k])
	}
	return strings.TrimSpace(sb.String())
}

func timings(rec map[string]any) map[string]float64 {
	out := map[string]float64{}
	for k, v := range rec {
		if !strings.HasSuffix(k, "_ms") {
			continue
		}
		if f, ok := v.(float64); ok && f > 0 {
			out[k] = f
		}
	}
	return out
}

func compare(baseline, current benchFile, failOver, warnOver float64) report {
	r := report{FailOver: failOver, WarnOver: warnOver}
	base := map[string]map[string]float64{}
	for _, rec := range baseline.Records {
		base[recordKey(rec)] = timings(rec)
	}
	seen := map[string]bool{}
	var ratios []float64
	for _, rec := range current.Records {
		key := recordKey(rec)
		seen[key] = true
		bt, ok := base[key]
		if !ok {
			r.Missing = append(r.Missing, "baseline lacks: "+key)
			continue
		}
		cur := timings(rec)
		cols := make([]string, 0, len(cur))
		for col := range cur {
			cols = append(cols, col)
		}
		sort.Strings(cols)
		for _, col := range cols {
			bv, ok := bt[col]
			if !ok {
				r.Missing = append(r.Missing, "baseline lacks: "+key+" "+col)
				continue
			}
			m := measurement{
				Key: key + " " + col, Baseline: bv, Current: cur[col],
				Ratio: cur[col] / bv,
			}
			ratios = append(ratios, m.Ratio)
			r.Measurements = append(r.Measurements, m)
		}
	}
	for key := range base {
		if !seen[key] {
			r.Missing = append(r.Missing, "current lacks: "+key)
		}
	}
	sort.Strings(r.Missing)
	if len(ratios) == 0 {
		r.Failed = true
		return r
	}
	sort.Float64s(ratios)
	r.SpeedFactor = ratios[len(ratios)/2]
	for i := range r.Measurements {
		m := &r.Measurements[i]
		m.Normal = m.Ratio / r.SpeedFactor
		switch {
		case m.Normal > failOver:
			m.Status = "fail"
			r.Failed = true
		case m.Normal > warnOver:
			m.Status = "warn"
		default:
			m.Status = "ok"
		}
	}
	// Rows missing from either side mean the gate workload changed
	// without a baseline refresh; that must fail too, or a regression
	// could hide behind a renamed column.
	if len(r.Missing) > 0 {
		r.Failed = true
	}
	return r
}

func readBench(path string) (benchFile, error) {
	var bf benchFile
	b, err := os.ReadFile(path)
	if err != nil {
		return bf, err
	}
	if err := json.Unmarshal(b, &bf); err != nil {
		return bf, fmt.Errorf("%s: %w", path, err)
	}
	if len(bf.Records) == 0 {
		return bf, fmt.Errorf("%s: no records", path)
	}
	return bf, nil
}

func main() {
	baselinePath := flag.String("baseline", "bench_baseline.json", "checked-in baseline file")
	currentPath := flag.String("current", "", "flexbench -json output to judge")
	failOver := flag.Float64("fail", 1.25, "fail when a normalized ratio exceeds this")
	warnOver := flag.Float64("warn", 1.10, "warn when a normalized ratio exceeds this")
	outPath := flag.String("out", "", "also write the diff report as JSON to this file")
	update := flag.Bool("update", false, "re-run the gate workload and rewrite the baseline")
	runs := flag.Int("runs", 5, "timed runs for -update")
	seed := flag.Int64("seed", 42, "data generator seed for -update")
	flag.Parse()

	if *update {
		cmd := exec.Command("go", "run", "./cmd/flexbench",
			"-fig", "gate", "-runs", fmt.Sprint(*runs),
			"-seed", fmt.Sprint(*seed), "-json", *baselinePath)
		cmd.Stdout = os.Stdout
		cmd.Stderr = os.Stderr
		if err := cmd.Run(); err != nil {
			fmt.Fprintln(os.Stderr, "benchdiff: update:", err)
			os.Exit(1)
		}
		fmt.Println("benchdiff: baseline updated:", *baselinePath)
		return
	}
	if *currentPath == "" {
		fmt.Fprintln(os.Stderr, "benchdiff: -current is required (or -update)")
		os.Exit(2)
	}
	baseline, err := readBench(*baselinePath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	current, err := readBench(*currentPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}

	r := compare(baseline, current, *failOver, *warnOver)
	fmt.Printf("machine speed factor (median ratio): %.3f\n", r.SpeedFactor)
	fmt.Printf("%-40s %10s %10s %8s %8s %s\n",
		"measurement", "base_ms", "cur_ms", "ratio", "norm", "status")
	for _, m := range r.Measurements {
		fmt.Printf("%-40s %10.3f %10.3f %8.3f %8.3f %s\n",
			m.Key, m.Baseline, m.Current, m.Ratio, m.Normal, m.Status)
	}
	for _, miss := range r.Missing {
		fmt.Println("MISSING:", miss)
	}
	if *outPath != "" {
		b, err := json.MarshalIndent(r, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchdiff:", err)
			os.Exit(2)
		}
		if err := os.WriteFile(*outPath, append(b, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "benchdiff:", err)
			os.Exit(2)
		}
	}
	if r.Failed {
		worst := 0.0
		for _, m := range r.Measurements {
			worst = math.Max(worst, m.Normal)
		}
		fmt.Printf("FAIL: regression gate tripped (worst normalized ratio %.3f > %.2f, "+
			"or gate workload changed without -update)\n", worst, *failOver)
		os.Exit(1)
	}
	fmt.Println("OK: no regression beyond threshold")
}
