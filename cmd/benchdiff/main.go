// Command benchdiff compares a flexbench -json run against a checked-in
// baseline and fails on latency and allocation regressions. It is the CI
// perf gate:
//
//	flexbench -fig gate -runs 5 -seed 42 -json current.json
//	benchdiff -baseline bench_baseline.json -current current.json
//
// CI machines and the machine that produced the baseline differ in
// speed, so raw timing ratios are useless. benchdiff normalizes: it
// computes the current/baseline ratio of every _ms column of every
// record, takes the median ratio as the machine-speed factor, and judges
// each measurement by its ratio relative to that median. A genuine
// regression makes a few measurements slower than the rest moved; a
// slower machine moves everything together and trips nothing.
//
// _allocs columns (allocations per operation) are machine-independent,
// so they are judged by their raw ratio and excluded from the median
// pool — an alloc regression cannot be masked by a fast machine, and
// cannot skew the timing normalization. Because allocation counts are
// also noise-free, they get their own, tighter thresholds (-allocfail,
// default 1.25) than the timing columns (-fail, default 1.5): allocs
// are the precise regression signal, timing the gross one.
//
//	benchdiff -update    # re-run the gate workload and rewrite the baseline
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"os/exec"
	"sort"
	"strings"
)

type benchFile struct {
	Runs    int              `json:"runs"`
	Seed    int64            `json:"seed"`
	Records []map[string]any `json:"records"`
}

type measurement struct {
	Key      string  `json:"key"` // "figure/query/K column"
	Baseline float64 `json:"baseline"`
	Current  float64 `json:"current"`
	Ratio    float64 `json:"ratio"` // raw current/baseline
	// Normal is the judged ratio: ratio / median timing ratio for _ms
	// columns, the raw ratio for machine-independent _allocs columns.
	Normal float64 `json:"normalized"`
	Status string  `json:"status"` // "ok", "warn", "fail"
	// Allocs marks an _allocs measurement (judged raw, not normalized).
	Allocs bool `json:"allocs,omitempty"`
}

type report struct {
	SpeedFactor   float64       `json:"speed_factor"` // median raw ratio
	FailOver      float64       `json:"fail_over"`
	WarnOver      float64       `json:"warn_over"`
	AllocFailOver float64       `json:"alloc_fail_over"`
	AllocWarnOver float64       `json:"alloc_warn_over"`
	Measurements  []measurement `json:"measurements"`
	Missing       []string      `json:"missing,omitempty"` // keys only one side has
	Failed        bool          `json:"failed"`
}

// thresholds carries the fail/warn cutoffs: timing columns are judged on
// their speed-normalized ratio, alloc columns on their raw ratio.
type thresholds struct {
	fail, warn           float64
	allocFail, allocWarn float64
}

// recordKey identifies a record by its non-metric columns, so baseline
// and current rows pair up no matter their order in the file.
func recordKey(rec map[string]any) string {
	keys := make([]string, 0, len(rec))
	for k := range rec {
		if strings.HasSuffix(k, "_ms") || strings.HasSuffix(k, "_allocs") {
			continue
		}
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var sb strings.Builder
	for _, k := range keys {
		fmt.Fprintf(&sb, "%s=%v ", k, rec[k])
	}
	return strings.TrimSpace(sb.String())
}

func timings(rec map[string]any) map[string]float64 {
	out := map[string]float64{}
	for k, v := range rec {
		if !strings.HasSuffix(k, "_ms") {
			continue
		}
		if f, ok := v.(float64); ok && f > 0 {
			out[k] = f
		}
	}
	return out
}

// allocCounts extracts the _allocs columns. Unlike timings, zero is a
// meaningful value (a fully arena-served operation allocates nothing),
// so it is kept.
func allocCounts(rec map[string]any) map[string]float64 {
	out := map[string]float64{}
	for k, v := range rec {
		if !strings.HasSuffix(k, "_allocs") {
			continue
		}
		if f, ok := v.(float64); ok && f >= 0 {
			out[k] = f
		}
	}
	return out
}

func compare(baseline, current benchFile, th thresholds) report {
	r := report{FailOver: th.fail, WarnOver: th.warn,
		AllocFailOver: th.allocFail, AllocWarnOver: th.allocWarn}
	base := map[string]map[string]float64{}
	for _, rec := range baseline.Records {
		base[recordKey(rec)] = timings(rec)
	}
	baseAllocs := map[string]map[string]float64{}
	for _, rec := range baseline.Records {
		baseAllocs[recordKey(rec)] = allocCounts(rec)
	}
	seen := map[string]bool{}
	var ratios []float64
	for _, rec := range current.Records {
		key := recordKey(rec)
		seen[key] = true
		bt, ok := base[key]
		if !ok {
			r.Missing = append(r.Missing, "baseline lacks: "+key)
			continue
		}
		cur := timings(rec)
		cols := make([]string, 0, len(cur))
		for col := range cur {
			cols = append(cols, col)
		}
		sort.Strings(cols)
		for _, col := range cols {
			bv, ok := bt[col]
			if !ok {
				r.Missing = append(r.Missing, "baseline lacks: "+key+" "+col)
				continue
			}
			m := measurement{
				Key: key + " " + col, Baseline: bv, Current: cur[col],
				Ratio: cur[col] / bv,
			}
			ratios = append(ratios, m.Ratio)
			r.Measurements = append(r.Measurements, m)
		}
		ba := baseAllocs[key]
		curA := allocCounts(rec)
		aCols := make([]string, 0, len(curA))
		for col := range curA {
			aCols = append(aCols, col)
		}
		sort.Strings(aCols)
		for _, col := range aCols {
			bv, ok := ba[col]
			if !ok {
				r.Missing = append(r.Missing, "baseline lacks: "+key+" "+col)
				continue
			}
			m := measurement{Key: key + " " + col, Baseline: bv, Current: curA[col], Allocs: true}
			switch {
			case bv > 0:
				m.Ratio = curA[col] / bv
			case curA[col] == 0:
				m.Ratio = 1 // 0 -> 0: unchanged
			default:
				m.Ratio = math.Inf(1) // 0 -> nonzero: new allocations appeared
			}
			r.Measurements = append(r.Measurements, m)
		}
		for col := range ba {
			if _, ok := curA[col]; !ok {
				r.Missing = append(r.Missing, "current lacks: "+key+" "+col)
			}
		}
	}
	for key := range base {
		if !seen[key] {
			r.Missing = append(r.Missing, "current lacks: "+key)
		}
	}
	sort.Strings(r.Missing)
	if len(ratios) == 0 {
		r.Failed = true
		return r
	}
	sort.Float64s(ratios)
	r.SpeedFactor = ratios[len(ratios)/2]
	for i := range r.Measurements {
		m := &r.Measurements[i]
		fail, warn := th.fail, th.warn
		if m.Allocs {
			// Allocation counts do not scale with machine speed: judge
			// the raw ratio, against the tighter alloc thresholds.
			m.Normal = m.Ratio
			fail, warn = th.allocFail, th.allocWarn
		} else {
			m.Normal = m.Ratio / r.SpeedFactor
		}
		switch {
		case m.Normal > fail:
			m.Status = "fail"
			r.Failed = true
		case m.Normal > warn:
			m.Status = "warn"
		default:
			m.Status = "ok"
		}
	}
	// Rows missing from either side mean the gate workload changed
	// without a baseline refresh; that must fail too, or a regression
	// could hide behind a renamed column.
	if len(r.Missing) > 0 {
		r.Failed = true
	}
	return r
}

func readBench(path string) (benchFile, error) {
	var bf benchFile
	b, err := os.ReadFile(path)
	if err != nil {
		return bf, err
	}
	if err := json.Unmarshal(b, &bf); err != nil {
		return bf, fmt.Errorf("%s: %w", path, err)
	}
	if len(bf.Records) == 0 {
		return bf, fmt.Errorf("%s: no records", path)
	}
	return bf, nil
}

func main() {
	baselinePath := flag.String("baseline", "bench_baseline.json", "checked-in baseline file")
	currentPath := flag.String("current", "", "flexbench -json output to judge")
	failOver := flag.Float64("fail", 1.5, "fail when a normalized timing ratio exceeds this")
	warnOver := flag.Float64("warn", 1.15, "warn when a normalized timing ratio exceeds this")
	allocFail := flag.Float64("allocfail", 1.25, "fail when a raw allocs/op ratio exceeds this")
	allocWarn := flag.Float64("allocwarn", 1.10, "warn when a raw allocs/op ratio exceeds this")
	outPath := flag.String("out", "", "also write the diff report as JSON to this file")
	update := flag.Bool("update", false, "re-run the gate workload and rewrite the baseline")
	runs := flag.Int("runs", 5, "timed runs for -update")
	seed := flag.Int64("seed", 42, "data generator seed for -update")
	flag.Parse()

	if *update {
		cmd := exec.Command("go", "run", "./cmd/flexbench",
			"-fig", "gate", "-runs", fmt.Sprint(*runs),
			"-seed", fmt.Sprint(*seed), "-json", *baselinePath)
		cmd.Stdout = os.Stdout
		cmd.Stderr = os.Stderr
		if err := cmd.Run(); err != nil {
			fmt.Fprintln(os.Stderr, "benchdiff: update:", err)
			os.Exit(1)
		}
		fmt.Println("benchdiff: baseline updated:", *baselinePath)
		return
	}
	if *currentPath == "" {
		fmt.Fprintln(os.Stderr, "benchdiff: -current is required (or -update)")
		os.Exit(2)
	}
	baseline, err := readBench(*baselinePath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	current, err := readBench(*currentPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}

	r := compare(baseline, current, thresholds{
		fail: *failOver, warn: *warnOver,
		allocFail: *allocFail, allocWarn: *allocWarn,
	})
	fmt.Printf("machine speed factor (median ratio): %.3f\n", r.SpeedFactor)
	fmt.Printf("%-40s %10s %10s %8s %8s %s\n",
		"measurement", "base_ms", "cur_ms", "ratio", "norm", "status")
	for _, m := range r.Measurements {
		fmt.Printf("%-40s %10.3f %10.3f %8.3f %8.3f %s\n",
			m.Key, m.Baseline, m.Current, m.Ratio, m.Normal, m.Status)
	}
	for _, miss := range r.Missing {
		fmt.Println("MISSING:", miss)
	}
	if *outPath != "" {
		b, err := json.MarshalIndent(r, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchdiff:", err)
			os.Exit(2)
		}
		if err := os.WriteFile(*outPath, append(b, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "benchdiff:", err)
			os.Exit(2)
		}
	}
	if r.Failed {
		worst := 0.0
		for _, m := range r.Measurements {
			worst = math.Max(worst, m.Normal)
		}
		fmt.Printf("FAIL: regression gate tripped (worst normalized ratio %.3f, "+
			"thresholds %.2f timing / %.2f allocs, "+
			"or gate workload changed without -update)\n", worst, *failOver, *allocFail)
		os.Exit(1)
	}
	fmt.Println("OK: no regression beyond threshold")
}
