package flexpath

import (
	"fmt"
	"sync"
	"sync/atomic"

	"flexpath/internal/fxp3"
	"flexpath/internal/mmapio"
)

// Residency: serving collections bigger than RAM.
//
// A collection member added from an FXP3 snapshot starts cold: the file
// is mapped and its header, directory and small meta section are read —
// a few pages — but the tree, statistics and postings are neither
// decoded nor faulted in. The first search that needs the document
// faults it in (decodes the sections over the mapping, checksumming
// each once); SetResidency bounds how many faulted-in documents stay
// hot, evicting the least recently used beyond the cap.
//
// Two facts make the memory math work:
//
//   - A resident document's bulk is file-backed. The columns, text and
//     postings alias the mapping, so the pages are clean and the kernel
//     reclaims them under pressure; the heap holds only string/slice
//     headers and lookup maps.
//
//   - Eviction drops exactly that heap state. It never unmaps: answers
//     and snippets from earlier searches alias the mapping, and an
//     unmap under them would be a use-after-free. Mappings are released
//     only by Collection.Close, when the caller asserts nothing derived
//     from the collection is reachable.
//
// An evicted member's *Document stays valid for searches already
// holding it (the snapshot-at-entry discipline collection searches
// already follow); it simply becomes garbage once they finish.

// member is one collection slot: the name-keyed pairing of an optional
// cold backing (an open FXP3 mapping) with the currently resident
// decoded document, if any. Members added with Add/AddFile have no cold
// backing and are pinned: they cannot be re-faulted, so they are never
// evicted and do not count against the residency cap.
type member struct {
	name string
	// doc is the resident decoded document; nil while cold.
	doc atomic.Pointer[Document]
	// cold is the snapshot backing for fault-in; nil when pinned.
	cold *coldDoc
	// lastUse is the collection's logical clock at the member's last
	// search, driving LRU eviction.
	lastUse atomic.Int64
}

// coldDoc is a member's snapshot backing: the parsed (but undecoded)
// container over an open mapping, plus the meta the collection needs
// while the document is cold.
type coldDoc struct {
	path string
	f    *fxp3.File
	meta SnapshotMeta
	// mu single-flights fault-in: concurrent searches hitting one cold
	// document decode it once.
	mu sync.Mutex
}

// nodes returns the member's node count without faulting it in.
func (m *member) nodes() int {
	if d := m.doc.Load(); d != nil {
		return d.Nodes()
	}
	return m.cold.meta.Nodes
}

// sourceBytes returns the member's XML source size without faulting.
func (m *member) sourceBytes() int64 {
	if d := m.doc.Load(); d != nil {
		return d.tree.SourceBytes()
	}
	return m.cold.meta.SourceBytes
}

// AddSnapshotFile adds the FXP3 snapshot at path as a cold member: the
// file is mapped and its meta section read, but the document is not
// decoded until a search needs it. The mapping stays open until
// Collection.Close. Only FXP3 snapshots can be added cold (the other
// formats cannot be decoded lazily); use Add(LoadAuto(...)) for them.
func (c *Collection) AddSnapshotFile(name, path string) error {
	mp, err := mmapio.Open(path)
	if err != nil {
		return err
	}
	f, err := fxp3.Parse(mp.Bytes())
	if err != nil {
		mp.Close()
		return wrapSnapshotPath(path, corrupt(err))
	}
	payload, err := f.Section(fxp3.SectionMeta)
	if err != nil {
		mp.Close()
		return wrapSnapshotPath(path, corrupt(err))
	}
	meta, err := decodeFXP3Meta(payload)
	if err != nil {
		mp.Close()
		return wrapSnapshotPath(path, err)
	}
	mem := &member{name: name, cold: &coldDoc{path: path, f: f, meta: meta}}
	if err := c.register(name, mem, mp); err != nil {
		mp.Close()
		return err
	}
	return nil
}

// require returns the member's document, faulting it in when cold.
func (c *Collection) require(m *member) (*Document, error) {
	m.lastUse.Store(c.tick.Add(1))
	if d := m.doc.Load(); d != nil {
		return d, nil
	}
	m.cold.mu.Lock()
	defer m.cold.mu.Unlock()
	if d := m.doc.Load(); d != nil {
		return d, nil
	}
	d, err := documentFromFXP3(m.cold.f, DocumentOptions{})
	if err != nil {
		return nil, wrapSnapshotPath(m.cold.path, err)
	}
	// The faulted-in document gets the collection's remembered cache
	// configuration, like any other late-arriving member.
	c.mu.RLock()
	cacheSet, cacheCap := c.docCacheSet, c.docCacheCap
	planSet, planCap := c.planCacheSet, c.planCacheCap
	c.mu.RUnlock()
	if cacheSet {
		d.SetCache(cacheCap)
	}
	if planSet {
		d.SetPlanCache(planCap)
	}
	m.doc.Store(d)
	c.faults.Add(1)
	c.enforceResidency()
	return d, nil
}

// SetResidency bounds how many fault-capable members stay resident:
// beyond max, the least recently used are evicted (their decoded heap
// state dropped; the mapping stays open, see the package comment
// above). max <= 0 removes the bound. Pinned members (added with
// Add/AddFile) are not counted and never evicted.
func (c *Collection) SetResidency(max int) {
	c.maxResident.Store(int64(max))
	c.enforceResidency()
}

// enforceResidency evicts least-recently-used resident members until
// the residency cap holds. Eviction races benignly with require: a
// member evicted mid-fault is simply re-faulted by its next search.
func (c *Collection) enforceResidency() {
	max := int(c.maxResident.Load())
	if max <= 0 {
		return
	}
	c.evictMu.Lock()
	defer c.evictMu.Unlock()
	_, members := c.snapshot()
	type cand struct {
		m   *member
		use int64
	}
	var res []cand
	for _, m := range members {
		if m.cold != nil && m.doc.Load() != nil {
			res = append(res, cand{m, m.lastUse.Load()})
		}
	}
	for len(res) > max {
		j := 0
		for i := range res {
			if res[i].use < res[j].use {
				j = i
			}
		}
		if old := res[j].m.doc.Swap(nil); old != nil {
			// Release the evicted document's heavyweight cache entries
			// (result sets, plan templates) immediately rather than
			// when the GC gets to the document.
			old.purgeCache()
			c.evictions.Add(1)
		}
		res = append(res[:j], res[j+1:]...)
	}
}

// ResidencyStats snapshots the collection's residency state.
type ResidencyStats struct {
	// Resident counts fault-capable members currently decoded; Cold
	// those currently not; Pinned the members with no snapshot backing
	// (always resident, exempt from the cap).
	Resident int `json:"resident"`
	Cold     int `json:"cold"`
	Pinned   int `json:"pinned"`
	// Max is the SetResidency cap; 0 means unbounded.
	Max int `json:"max"`
	// Faults counts cold documents decoded on demand; Evictions counts
	// residency-cap evictions. Faults > Cold+Resident means documents
	// are cycling: the cap is too tight for the working set.
	Faults    uint64 `json:"faults"`
	Evictions uint64 `json:"evictions"`
}

// ResidencyStats reports the collection's residency counters.
func (c *Collection) ResidencyStats() ResidencyStats {
	s := ResidencyStats{
		Max:       int(c.maxResident.Load()),
		Faults:    c.faults.Load(),
		Evictions: c.evictions.Load(),
	}
	_, members := c.snapshot()
	for _, m := range members {
		switch {
		case m.cold == nil:
			s.Pinned++
		case m.doc.Load() != nil:
			s.Resident++
		default:
			s.Cold++
		}
	}
	return s
}

// MemberInfo describes one collection member without faulting it in.
type MemberInfo struct {
	Name string `json:"name"`
	// Resident reports whether the member is currently decoded;
	// Pinned whether it has no snapshot backing (always resident).
	Resident bool `json:"resident"`
	Pinned   bool `json:"pinned"`
	// Nodes and SourceBytes come from the decoded document when
	// resident and from the snapshot's meta section when cold.
	Nodes       int   `json:"nodes"`
	SourceBytes int64 `json:"source_bytes"`
}

// Members lists the collection's members in insertion order, resident
// or not. Unlike Document, listing never faults a cold member in —
// this is the view status endpoints should serve.
func (c *Collection) Members() []MemberInfo {
	_, members := c.snapshot()
	out := make([]MemberInfo, len(members))
	for i, m := range members {
		out[i] = MemberInfo{
			Name:        m.name,
			Resident:    m.doc.Load() != nil || m.cold == nil,
			Pinned:      m.cold == nil,
			Nodes:       m.nodes(),
			SourceBytes: m.sourceBytes(),
		}
	}
	return out
}

// Close releases every mapping the collection holds: cold members'
// snapshot mappings and the mappings of documents (added with Add)
// that own one. After Close every answer, snippet and document derived
// from the collection is invalid; call it only on shutdown, when
// nothing derived is reachable. Close is idempotent.
func (c *Collection) Close() error {
	c.mu.Lock()
	mappings := c.mappings
	c.mappings = nil
	members := c.members
	c.mu.Unlock()
	var first error
	for _, mp := range mappings {
		if err := mp.Close(); err != nil && first == nil {
			first = err
		}
	}
	for _, m := range members {
		if d := m.doc.Load(); d != nil {
			if err := d.Close(); err != nil && first == nil {
				first = err
			}
		}
	}
	return first
}

// register inserts a member under a name, recording its mapping (if
// any) for Close, and applies the collection-level bookkeeping every
// membership change shares.
func (c *Collection) register(name string, mem *member, mp *mmapio.Mapping) error {
	c.mu.Lock()
	if c.byName == nil {
		c.byName = make(map[string]int)
	}
	if _, dup := c.byName[name]; dup {
		c.mu.Unlock()
		return fmt.Errorf("flexpath: duplicate document name %q", name)
	}
	c.byName[name] = len(c.names)
	c.names = append(c.names, name)
	c.members = append(c.members, mem)
	if mp != nil {
		c.mappings = append(c.mappings, mp)
	}
	c.mu.Unlock()
	if qc := c.qc.Load(); qc != nil {
		qc.Purge()
	}
	return nil
}
