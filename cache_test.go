package flexpath

import (
	"fmt"
	"strings"
	"testing"

	"flexpath/internal/xmark"
)

// renderRanking serializes a ranking so tests can assert byte-identity.
func renderRanking(answers []Answer) string {
	var sb strings.Builder
	for i, a := range answers {
		fmt.Fprintf(&sb, "%d|%s|%s|%.12f|%.12f|%d|%v\n",
			i, a.Path, a.ID, a.Structural, a.Keyword, a.Relaxations, a.Relaxed)
	}
	return sb.String()
}

func renderCollRanking(answers []CollectionAnswer) string {
	var sb strings.Builder
	for i, a := range answers {
		fmt.Fprintf(&sb, "%d|%s|%s|%s|%.12f|%.12f|%d|%v\n",
			i, a.DocName, a.Path, a.ID, a.Structural, a.Keyword, a.Relaxations, a.Relaxed)
	}
	return sb.String()
}

func xmarkDoc(t *testing.T, kb int, seed int64) *Document {
	t.Helper()
	tree, err := xmark.Build(xmark.Config{TargetBytes: int64(kb) << 10, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return NewDocument(tree)
}

// TestCachedAnswersIdenticalToCold is the correctness contract of the
// result cache: for every algorithm, a cache hit returns exactly the
// ranking a cold evaluation produces.
func TestCachedAnswersIdenticalToCold(t *testing.T) {
	doc := xmarkDoc(t, 200, 7)
	doc.SetCache(64)
	q := MustParseQuery(`//item[./description/parlist and ./mailbox/mail/text]`)
	for _, algo := range []Algorithm{Hybrid, SSO, DPO} {
		for _, scheme := range []Scheme{StructureFirst, KeywordFirst, Combined} {
			opts := SearchOptions{K: 15, Algorithm: algo, Scheme: scheme}
			coldOpts := opts
			coldOpts.NoCache = true
			cold, err := doc.Search(q, coldOpts)
			if err != nil {
				t.Fatalf("%v/%v cold: %v", algo, scheme, err)
			}
			if _, err := doc.Search(q, opts); err != nil { // miss, populates
				t.Fatalf("%v/%v prime: %v", algo, scheme, err)
			}
			warm, err := doc.Search(q, opts) // hit
			if err != nil {
				t.Fatalf("%v/%v warm: %v", algo, scheme, err)
			}
			if renderRanking(cold) != renderRanking(warm) {
				t.Errorf("%v/%v: cached ranking differs from cold evaluation\ncold:\n%swarm:\n%s",
					algo, scheme, renderRanking(cold), renderRanking(warm))
			}
		}
	}
	st, ok := doc.CacheStats()
	if !ok {
		t.Fatal("CacheStats reported no cache")
	}
	// 9 combinations: each primed once (miss) and hit once; NoCache runs
	// must not touch the cache at all.
	if st.Misses != 9 || st.Hits != 9 {
		t.Errorf("cache counters = %+v, want 9 misses / 9 hits", st)
	}
}

// TestCacheHitNotPoisonedByCallerMutation is the regression test for
// the cache aliasing bug: cached results were handed to callers without
// copying the Relaxed explanation slices, so a caller mutating its
// answers silently rewrote the cache entry for every later hit.
func TestCacheHitNotPoisonedByCallerMutation(t *testing.T) {
	doc, err := LoadString(articlesXML)
	if err != nil {
		t.Fatal(err)
	}
	doc.SetCache(16)
	q := MustParseQuery(paperQ1)
	opts := SearchOptions{K: 5, Algorithm: Hybrid}
	first, err := doc.Search(q, opts) // miss, populates the cache
	if err != nil {
		t.Fatal(err)
	}
	want := renderRanking(first)
	relaxed := false
	for i := range first {
		for j := range first[i].Relaxed {
			first[i].Relaxed[j] = "CLOBBERED"
			relaxed = true
		}
	}
	if !relaxed {
		t.Fatal("workload produced no relaxed answers; test exercises nothing")
	}
	second, err := doc.Search(q, opts) // hit
	if err != nil {
		t.Fatal(err)
	}
	if got := renderRanking(second); got != want {
		t.Errorf("mutating a miss's answers poisoned the cache\nwant:\n%sgot:\n%s", want, got)
	}
	// Mutating a hit's answers must not poison later hits either.
	for i := range second {
		for j := range second[i].Relaxed {
			second[i].Relaxed[j] = "CLOBBERED"
		}
	}
	third, err := doc.Search(q, opts)
	if err != nil {
		t.Fatal(err)
	}
	if got := renderRanking(third); got != want {
		t.Errorf("mutating a hit's answers poisoned the cache\nwant:\n%sgot:\n%s", want, got)
	}
}

func TestCacheKeySeparatesOptions(t *testing.T) {
	doc, err := LoadString(articlesXML)
	if err != nil {
		t.Fatal(err)
	}
	doc.SetCache(64)
	q := MustParseQuery(paperQ1)
	a2, err := doc.Search(q, SearchOptions{K: 2})
	if err != nil {
		t.Fatal(err)
	}
	a3, err := doc.Search(q, SearchOptions{K: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(a2) != 2 || len(a3) != 3 {
		t.Fatalf("K confusion across cache entries: %d, %d", len(a2), len(a3))
	}
	// Different scheme must not collide either. The algorithm is pinned
	// because the byte-identity check covers Relaxed, which only the
	// plan-based algorithms populate: the adaptive Auto mode may switch
	// to DPO between the two searches as its calibration evolves.
	kw, err := doc.Search(q, SearchOptions{K: 2, Scheme: KeywordFirst, Algorithm: Hybrid})
	if err != nil {
		t.Fatal(err)
	}
	kwCold, err := doc.Search(q, SearchOptions{K: 2, Scheme: KeywordFirst, Algorithm: Hybrid, NoCache: true})
	if err != nil {
		t.Fatal(err)
	}
	if renderRanking(kw) != renderRanking(kwCold) {
		t.Error("scheme-specific entry polluted by other scheme")
	}
	if st, _ := doc.CacheStats(); st.Entries != 3 {
		t.Errorf("entries = %d, want 3 distinct", st.Entries)
	}
}

func TestCachePaginationSharing(t *testing.T) {
	doc, err := LoadString(articlesXML)
	if err != nil {
		t.Fatal(err)
	}
	doc.SetCache(64)
	q := MustParseQuery(paperQ1)
	full, err := doc.Search(q, SearchOptions{K: 3, NoCache: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := doc.Search(q, SearchOptions{K: 2, Offset: 1}); err != nil {
		t.Fatal(err)
	}
	page, err := doc.Search(q, SearchOptions{K: 2, Offset: 1}) // hit
	if err != nil {
		t.Fatal(err)
	}
	if renderRanking(page) != renderRanking(full[1:]) {
		t.Errorf("cached page differs:\n%s\nvs\n%s", renderRanking(page), renderRanking(full[1:]))
	}
}

func TestCacheEviction(t *testing.T) {
	doc, err := LoadString(articlesXML)
	if err != nil {
		t.Fatal(err)
	}
	doc.SetCache(1)
	q := MustParseQuery(paperQ1)
	for k := 1; k <= 4; k++ {
		if _, err := doc.Search(q, SearchOptions{K: k}); err != nil {
			t.Fatal(err)
		}
	}
	st, _ := doc.CacheStats()
	if st.Evictions == 0 {
		t.Errorf("no evictions in a capacity-1 cache: %+v", st)
	}
	if st.Entries > 1 {
		t.Errorf("capacity-1 cache holds %d entries", st.Entries)
	}
	// Post-eviction correctness: the evicted query re-evaluates cleanly.
	a, err := doc.Search(q, SearchOptions{K: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != 1 || a[0].ID != "a1" {
		t.Errorf("post-eviction answer: %+v", a)
	}
}

func TestCacheDisabledByDefault(t *testing.T) {
	doc, err := LoadString(articlesXML)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := doc.CacheStats(); ok {
		t.Error("cache reported enabled on a fresh document")
	}
	doc.SetCache(8)
	if _, ok := doc.CacheStats(); !ok {
		t.Error("SetCache did not enable the cache")
	}
	doc.SetCache(0)
	if _, ok := doc.CacheStats(); ok {
		t.Error("SetCache(0) did not disable the cache")
	}
}

func TestCacheHitZeroesMetrics(t *testing.T) {
	doc, err := LoadString(articlesXML)
	if err != nil {
		t.Fatal(err)
	}
	doc.SetCache(8)
	q := MustParseQuery(paperQ1)
	var m Metrics
	if _, err := doc.Search(q, SearchOptions{K: 3, Metrics: &m}); err != nil {
		t.Fatal(err)
	}
	if m.PlansRun == 0 {
		t.Fatal("cold run reported no plans")
	}
	if _, err := doc.Search(q, SearchOptions{K: 3, Metrics: &m}); err != nil {
		t.Fatal(err)
	}
	if m.PlansRun != 0 {
		t.Errorf("cache hit reported work: %+v", m)
	}
}

func TestCollectionCacheIdenticalAndPurgedOnAdd(t *testing.T) {
	c := testCollection(t)
	c.SetCache(16)
	q := MustParseQuery(paperQ1)
	cold, err := c.Search(q, SearchOptions{K: 3, NoCache: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Search(q, SearchOptions{K: 3}); err != nil {
		t.Fatal(err)
	}
	warm, err := c.Search(q, SearchOptions{K: 3})
	if err != nil {
		t.Fatal(err)
	}
	if renderCollRanking(cold) != renderCollRanking(warm) {
		t.Errorf("collection cache hit differs from cold run:\n%s\nvs\n%s",
			renderCollRanking(cold), renderCollRanking(warm))
	}
	st, ok := c.CacheStats()
	if !ok || st.Hits != 1 {
		t.Errorf("collection cache stats = %+v ok=%v", st, ok)
	}

	// Adding a document purges merged rankings: the new corpus must be
	// searched, not served from the stale entry.
	extra, err := LoadString(articlesXML)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Add("extra.xml", extra); err != nil {
		t.Fatal(err)
	}
	after, err := c.Search(q, SearchOptions{K: 3})
	if err != nil {
		t.Fatal(err)
	}
	seen := false
	for _, a := range after {
		if a.DocName == "extra.xml" {
			seen = true
		}
	}
	if !seen {
		t.Errorf("stale cache served after Add: %s", renderCollRanking(after))
	}
}

// TestCollectionCacheHitNotPoisonedByCallerMutation is the
// collection-level half of the cache aliasing regression: merged
// CollectionAnswer slices were cached and returned shallowly, so a
// caller rewriting Relaxed explanations corrupted every later hit.
func TestCollectionCacheHitNotPoisonedByCallerMutation(t *testing.T) {
	c := testCollection(t)
	c.SetCache(16)
	q := MustParseQuery(paperQ1)
	opts := SearchOptions{K: 3}
	first, err := c.Search(q, opts) // miss, populates
	if err != nil {
		t.Fatal(err)
	}
	want := renderCollRanking(first)
	relaxed := false
	for i := range first {
		for j := range first[i].Relaxed {
			first[i].Relaxed[j] = "CLOBBERED"
			relaxed = true
		}
	}
	if !relaxed {
		t.Fatal("workload produced no relaxed answers; test exercises nothing")
	}
	second, err := c.Search(q, opts) // hit
	if err != nil {
		t.Fatal(err)
	}
	if got := renderCollRanking(second); got != want {
		t.Errorf("mutating a miss's answers poisoned the collection cache\nwant:\n%sgot:\n%s", want, got)
	}
	for i := range second {
		for j := range second[i].Relaxed {
			second[i].Relaxed[j] = "CLOBBERED"
		}
	}
	third, err := c.Search(q, opts)
	if err != nil {
		t.Fatal(err)
	}
	if got := renderCollRanking(third); got != want {
		t.Errorf("mutating a hit's answers poisoned the collection cache\nwant:\n%sgot:\n%s", want, got)
	}
}

func TestCollectionDocumentCaches(t *testing.T) {
	c := testCollection(t)
	c.SetDocumentCaches(8)
	q := MustParseQuery(paperQ1)
	if _, err := c.Search(q, SearchOptions{K: 3}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Search(q, SearchOptions{K: 3}); err != nil {
		t.Fatal(err)
	}
	st, ok := c.DocumentCacheStats()
	if !ok || st.Hits == 0 {
		t.Errorf("per-document caches unused: %+v ok=%v", st, ok)
	}
	c.SetDocumentCaches(0)
	if _, ok := c.DocumentCacheStats(); ok {
		t.Error("SetDocumentCaches(0) did not disable")
	}
}
